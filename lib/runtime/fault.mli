(** Deterministic, seedable fault injection.

    Every recovery path of the runtime ({!Retry} backoff, {!Pool} failure
    capture, {!Cache} quarantine, {!Journal} resume) is only trustworthy if
    it can be exercised on demand, so this module turns the [RATS_FAULT]
    environment variable into injection points the rest of the runtime
    consults. With [RATS_FAULT] unset (the default) every probe is a no-op
    and the happy path is bit-identical to a build without injection.

    Decisions are {e deterministic}: whether a fault fires at a given
    ([site], [key]) pair is a pure function of the seed, the fault kind, the
    site and the key — never of wall-clock time, worker interleaving or a
    shared RNG. The same spec therefore injects the same faults no matter
    how many pool workers run the sweep, which is what makes the recovery
    tests reproducible. Retries pass a fresh key (the attempt number is
    appended), so a crash-prone task can still succeed on a later attempt.

    Spec grammar (comma-separated, spaces ignored):
    {v
    RATS_FAULT="seed=42,crash=0.1,delay=0.02,corrupt=0.2,delay_s=0.1"
    v}
    - [seed=N] — decision seed (default 0).
    - [crash=P] / [delay=P] / [corrupt=P] — global per-kind probabilities in
      [0,1] (default 0).
    - [kind@site=P] — site override, e.g. [crash@worker=0.5] or
      [corrupt@cache.write=1]. Sites used by the runtime: ["worker"] (task
      execution in {!Exec}), ["cache.write"] ({!Cache.store}),
      ["journal.append"] ({!Journal.append}: [Delay] stalls the write,
      [Crash] turns it into an I/O failure that disables the journal).
      Sites used by the service layer (see docs/SERVER.md "Failure
      semantics"): ["server.read"] ([Corrupt] damages a chunk read off a
      client socket), ["server.client"] ([Crash] force-disconnects a
      client mid-session), ["engine.step"] ([Delay] before a dispatch
      batch), ["replay.task"] ([Delay] when a task finishes on the shared
      simulator).
    - [delay_s=S] — duration of one injected delay in seconds
      (default 0.05).
    - [off] (alone) — explicitly disabled, same as unset. *)

type kind = Crash | Delay | Corrupt

type t

exception Injected of string
(** Raised by {!crash_point}; the payload names the site and key. *)

val parse : string -> (t, string) result
(** Parse a spec string; [Error] carries a human-readable reason. *)

val of_env : unit -> t option
(** [RATS_FAULT] parsed, [None] when unset, empty or ["off"]. An invalid
    spec prints the reason on stderr and exits 2 — silently ignoring a typo
    would "pass" every fault test without injecting anything. *)

val spec : t -> string
(** Canonical rendering of the configuration (for logs and reports). *)

val delay_duration : t -> float

val fires : t -> kind -> site:string -> key:string -> bool
(** Pure decision: does this fault fire here? Deterministic in
    (seed, kind, site, key). Callers acting on a positive decision
    directly (rather than through the helpers below) should bump
    [Rats_obs.Instr.fault_injections] themselves — the helpers do it for
    them. *)

val crash_point : t option -> site:string -> key:string -> unit
(** Raise {!Injected} when a [Crash] fires; no-op on [None]. *)

val delay_point : t option -> site:string -> key:string -> unit
(** Sleep {!delay_duration} seconds when a [Delay] fires; no-op on
    [None]. *)

val corrupt_payload : t option -> site:string -> key:string -> string -> string
(** Return a damaged copy of the payload (truncated and bit-flipped) when a
    [Corrupt] fires, the payload unchanged otherwise. *)
