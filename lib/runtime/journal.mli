(** Write-ahead journal of completed results.

    The {!Cache} makes re-running cheap, but it can be disabled
    ([RATS_CACHE=off]) and says nothing about {e which} work a particular
    run completed. The journal does: every computed (key, payload) pair is
    appended — one buffered write, then [fsync] — before the sweep moves
    on, so a run killed at any instant leaves a journal whose well-formed
    prefix is exactly the set of configurations it finished. Restarting
    with [resume:true] loads that prefix and the runner replays the stored
    payloads, re-executing only the missing work; the final results are
    bit-identical to an uninterrupted run because payloads round-trip
    exactly (the experiment layer encodes floats as ["%h"]).

    Keys are content-addressed (the caller passes {!Cache.key} digests), so
    entries from a run with different parameters, configurations or code
    version simply never match — resuming against a stale journal is safe,
    merely useless.

    Layout: one file per run name under [bench_results/.journal/]; a header
    line, then length-prefixed, checksummed records (payloads may contain
    newlines and arbitrary bytes). A torn final record — the crash case —
    is detected by checksum/length and truncated away on open. [append] is
    mutex-guarded: {!Pool} workers share one journal. *)

type t

val default_dir : string
(** ["bench_results/.journal"]. *)

val path : t -> string

val open_ : ?dir:string -> ?fault:Fault.t -> name:string -> resume:bool -> unit -> t
(** Open (creating directories as needed) the journal named [name]
    (sanitized into a filename). With [resume:false] any existing journal
    for that name is discarded — the run starts from nothing. With
    [resume:true] the well-formed prefix of the existing file is loaded
    (see {!find}/{!loaded}) and appends continue after it.

    [fault] arms the ["journal.append"] injection site on this journal:
    a [Delay] stalls an append (outside the lock), a [Crash] turns it
    into an I/O failure, exercising the disable-on-error degraded path
    below without a real full disk. *)

val find : t -> string -> string option
(** Payload recorded under the key by the run being resumed. *)

val loaded : t -> int
(** Number of records replayed from a previous run at open time. *)

val appended : t -> int
(** Number of records appended by this run. *)

val append : t -> key:string -> string -> unit
(** Durably record one completed result (atomic append + fsync). I/O errors
    are reported once on stderr and further appends disabled — losing the
    journal degrades resumability, never the run. *)

val writable : t -> bool
(** [false] once an append failure (real or injected) has disabled the
    journal, or after {!close} — the run continues but will not resume. *)

val close : t -> unit

(** {2 Read-only tailing}

    A monitor (the studio's [serve] mode) wants to watch a journal that a
    {e different} process is appending to. {!open_} is the wrong tool — it
    opens for writing and truncates torn tails; {!read_tail} does neither:
    it parses whatever well-formed prefix exists right now and reports a
    torn or still-being-written final record instead of repairing it. *)

type tail = {
  records : (string * string) list;
      (** (key, payload) records of the well-formed prefix, in append
          order (duplicate keys are kept — unlike {!find}, which sees the
          last write). *)
  torn : bool;
      (** The file ends in a damaged or incomplete record. Transient while
          the writer is mid-append; permanent after a crash. *)
  bytes : int;  (** Current file size. *)
  good_bytes : int;  (** Offset where the well-formed prefix ends. *)
}

val read_tail : string -> (tail, string) result
(** [read_tail path] parses the journal file at [path] (a {!path}, not a
    name). Errors: unreadable file, or a header that is not a RATS
    journal's. Safe to call concurrently with a live appender. *)
