(** Execution context for fault-tolerant experiment sweeps.

    One value of {!t} carries everything the experiment layer needs to run
    a unit of work: worker count, result {!Cache}, {!Fault} injection,
    {!Retry} policy (bounded retries + per-attempt timeout), strictness and
    the write-ahead {!Journal}. The default context (no cache, no faults,
    no retries, no journal, non-strict) makes every combinator an ordinary
    call — the happy path is unchanged.

    Failure contract: in the default (non-strict) mode a task that keeps
    failing after its retries becomes a structured {!Retry.failure} in its
    own result slot; the sweep completes and the caller reports the
    failures. With [strict = true] the first failure raises {!Task_failed}
    and pool workers stop claiming work — the historical fail-fast
    behavior, restored by [--strict]. *)

type stats = {
  failed : int Atomic.t;  (** Tasks that exhausted their retries. *)
  retried : int Atomic.t;  (** Extra attempts beyond each task's first. *)
  resumed : int Atomic.t;  (** Results replayed from the journal. *)
}

type t = {
  jobs : int;
  cache : Cache.t option;
  fault : Fault.t option;
  retry : Retry.policy;
  strict : bool;
  journal : Journal.t option;
  stats : stats;
}

exception Task_failed of string * Retry.failure
(** Raised (in strict mode) with the task name and its failure. *)

val make :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?fault:Fault.t ->
  ?retry:Retry.policy ->
  ?strict:bool ->
  ?journal:Journal.t ->
  unit ->
  t
(** Defaults: [jobs = Pool.default_jobs ()], no cache, no fault injection,
    {!Retry.default} (no retries, no timeout), [strict = false], no
    journal. *)

val of_env :
  ?jobs:int ->
  ?retry:Retry.policy ->
  ?strict:bool ->
  ?journal:Journal.t ->
  unit ->
  t
(** Like {!make} but the cache comes from {!Cache.of_env} and fault
    injection from {!Fault.of_env} ([RATS_FAULT]); the fault configuration
    is threaded into the cache so write faults fire there too. *)

type source = Computed | From_cache | From_journal

type 'a outcome = {
  source : source;  (** Meaningful when [value] is [Ok]. *)
  attempts : int;  (** 1 for cache/journal replays. *)
  value : ('a, Retry.failure) result;
}

val run_task : t -> name:string -> (unit -> 'a) -> 'a outcome
(** Run one task under the context's fault points (site ["worker"], keyed
    by [name] and attempt number), retry policy and timeout, updating
    {!stats}. In strict mode a final failure raises {!Task_failed}
    instead. *)

val keyed :
  t ->
  name:string ->
  key:string ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  (unit -> 'a) ->
  'a outcome
(** {!run_task} behind the two persistence layers: a cache hit returns
    [From_cache]; otherwise a journal hit (a completed result of the
    interrupted run being resumed) returns [From_journal], counts toward
    [stats.resumed] and is promoted into the cache; otherwise the task is
    computed and, on success, stored in the cache and appended to the
    journal before returning. Keys are expected to come from
    {!Cache.key}. *)

val map :
  t ->
  name:('a -> string) ->
  f:('a -> 'b) ->
  'a list ->
  ('b, string * Retry.failure) result list
(** Pool-parallel {!run_task} over a list; the result list is in input
    order with one slot per element, failures carrying the task name. An
    exception escaping outside the retry machinery (a bug, not a task
    fault) is also captured as a failure in non-strict mode. *)

val map_outcome : t -> run:('a -> 'b outcome) -> 'a list -> 'b outcome list
(** Pool-parallel outcome map, for callers that build their own per-item
    work from {!keyed} or {!run_task} (and therefore need the
    cache/journal provenance of each slot). Output order matches input
    order for every worker count. In non-strict mode an exception escaping
    [run] itself is captured as a [Crashed] failure in its slot. *)

val computed_cleanly : t -> (unit -> 'a) -> 'a * bool
(** [computed_cleanly t f] runs [f] and reports whether it finished without
    any new task failure in [t.stats]. Aggregate cache entries (whole-sweep
    or whole-study payloads) must only be stored when clean — otherwise a
    later warm run would replay degraded averages as if complete. *)

val oks : ('b, 'e) result list -> 'b list

val failures : ('b, 'e) result list -> 'e list
