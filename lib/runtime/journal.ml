type t = {
  path : string;
  mutable fd : Unix.file_descr option;
  entries : (string, string) Hashtbl.t;
  loaded : int;
  mutable appended : int;
  mutex : Mutex.t;
  fault : Fault.t option;
}

let default_dir = Filename.concat "bench_results" ".journal"

let header = "RATS-JOURNAL 1\n"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

(* Record checksum covers lengths and contents, length-prefixed so the
   (key, payload) split is part of what is verified. *)
let record_checksum key payload =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d:%s%d:%s" (String.length key) key
          (String.length payload) payload))

let encode_record key payload =
  Printf.sprintf "%s %d %d\n%s%s\n"
    (record_checksum key payload)
    (String.length key) (String.length payload) key payload

(* Parse records from [contents] after the header; returns the records of
   the well-formed prefix in file order and the offset where the first
   damaged (or missing) record starts — everything after it is a torn
   tail. *)
let parse_records contents =
  let len = String.length contents in
  let records = ref [] in
  let rec go offset =
    if offset >= len then offset
    else
      match String.index_from_opt contents offset '\n' with
      | None -> offset
      | Some nl -> (
          let meta = String.sub contents offset (nl - offset) in
          match String.split_on_char ' ' meta with
          | [ checksum; klen; plen ]
            when String.length checksum = 32 -> (
              match (int_of_string_opt klen, int_of_string_opt plen) with
              | Some klen, Some plen
                when klen >= 0 && plen >= 0
                     && nl + 1 + klen + plen + 1 <= len
                     && contents.[nl + klen + plen + 1] = '\n' ->
                  let key = String.sub contents (nl + 1) klen in
                  let payload = String.sub contents (nl + 1 + klen) plen in
                  if record_checksum key payload = checksum then begin
                    records := (key, payload) :: !records;
                    go (nl + 1 + klen + plen + 1)
                  end
                  else offset
              | _ -> offset)
          | _ -> offset)
  in
  let good = go (String.length header) in
  (List.rev !records, good)

let entries_of_records records =
  let entries = Hashtbl.create 256 in
  List.iter (fun (key, payload) -> Hashtbl.replace entries key payload) records;
  entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type tail = {
  records : (string * string) list;
  torn : bool;
  bytes : int;
  good_bytes : int;
}

(* Read-only view for monitors tailing a sweep that another process is
   writing: never opens for writing, never truncates, reports rather than
   repairs a torn tail. Reading concurrently with an append is safe — the
   worst case is seeing the append half-written, which parses as a torn
   tail this time and as a record the next. *)
let read_tail path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | contents
    when String.length contents < String.length header
         || String.sub contents 0 (String.length header) <> header ->
      Error (Printf.sprintf "%s: not a RATS journal (bad header)" path)
  | contents ->
      let records, good = parse_records contents in
      Ok
        {
          records;
          torn = good < String.length contents;
          bytes = String.length contents;
          good_bytes = good;
        }

let path t = t.path

let open_ ?(dir = default_dir) ?fault ~name ~resume () =
  mkdir_p dir;
  let path = Filename.concat dir (sanitize name ^ ".journal") in
  let previous =
    if resume && Sys.file_exists path then
      match read_file path with
      | contents
        when String.length contents >= String.length header
             && String.sub contents 0 (String.length header) = header ->
          Some (parse_records contents)
      | _ | (exception Sys_error _) -> None
    else None
  in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  let entries, loaded =
    match previous with
    | Some (records, good_offset) ->
        (* Drop the torn tail of the crashed run, keep the good prefix. *)
        Unix.ftruncate fd good_offset;
        ignore (Unix.lseek fd 0 Unix.SEEK_END);
        let entries = entries_of_records records in
        (entries, Hashtbl.length entries)
    | None ->
        Unix.ftruncate fd 0;
        ignore (Unix.single_write_substring fd header 0 (String.length header));
        Unix.fsync fd;
        (Hashtbl.create 256, 0)
  in
  { path; fd = Some fd; entries; loaded; appended = 0; mutex = Mutex.create (); fault }

let find t key = Hashtbl.find_opt t.entries key

let loaded t = t.loaded

let appended t = t.appended

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      go (off + Unix.single_write_substring fd s off (n - off))
  in
  go 0

let site = "journal.append"

let append t ~key payload =
  (* Outside the lock: an injected stall must not serialise other
     appenders behind the sleep. *)
  Fault.delay_point t.fault ~site ~key;
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.fd with
      | None -> ()
      | Some fd -> (
          try
            (match t.fault with
            | Some f when Fault.fires f Fault.Crash ~site ~key ->
                Rats_obs.Metrics.incr Rats_obs.Instr.fault_injections;
                raise (Unix.Unix_error (Unix.EIO, "journal.append (injected)", t.path))
            | _ -> ());
            write_all fd (encode_record key payload);
            Unix.fsync fd;
            Hashtbl.replace t.entries key payload;
            t.appended <- t.appended + 1
          with Unix.Unix_error (e, _, _) ->
            Printf.eprintf
              "journal: write to %s failed (%s); resumability disabled for \
               this run\n\
               %!"
              t.path (Unix.error_message e);
            (try Unix.close fd with Unix.Unix_error _ -> ());
            t.fd <- None))

let writable t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> t.fd <> None)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.fd with
      | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.fd <- None
      | None -> ())
