module Metrics = Rats_obs.Metrics
module Instr = Rats_obs.Instr

(* The counts live in the process-wide metrics registry
   ([rats_progress_*_total]); a reporter only remembers the counter values
   at its creation and prints deltas, so its numbers restart at zero for
   every sweep while the registry keeps the process totals. The mutex
   serialises printing only — counter updates are atomic. *)
type t = {
  label : string;
  total : int;
  enabled : bool;
  mutex : Mutex.t;
  start : float;
  base_completed : int;
  base_hits : int;
  base_failed : int;
  base_retried : int;
  base_resumed : int;
  mutable last_print : float;
}

let min_print_interval = 0.5

let create ?(enabled = true) ~label ~total () =
  let now = Instr.now_s () in
  {
    label;
    total;
    enabled;
    mutex = Mutex.create ();
    start = now;
    base_completed = Metrics.counter_value Instr.progress_completed;
    base_hits = Metrics.counter_value Instr.progress_cache_hits;
    base_failed = Metrics.counter_value Instr.progress_failed;
    base_retried = Metrics.counter_value Instr.progress_retried;
    base_resumed = Metrics.counter_value Instr.progress_resumed;
    last_print = now;
  }

let completed t = Metrics.counter_value Instr.progress_completed - t.base_completed
let cache_hits t = Metrics.counter_value Instr.progress_cache_hits - t.base_hits
let failed t = Metrics.counter_value Instr.progress_failed - t.base_failed
let retried t = Metrics.counter_value Instr.progress_retried - t.base_retried
let resumed t = Metrics.counter_value Instr.progress_resumed - t.base_resumed

let rate t now =
  let dt = now -. t.start in
  if dt <= 0. then 0. else float_of_int (completed t) /. dt

(* The fault counters only appear once nonzero, so a clean run prints the
   exact same lines it always did. *)
let fault_suffix t =
  let part name n = if n = 0 then "" else Printf.sprintf "  %s %d" name n in
  part "resumed" (resumed t) ^ part "failed" (failed t)
  ^ part "retried" (retried t)

let hit_pct t =
  let c = completed t in
  if c = 0 then 0 else 100 * cache_hits t / c

let print_line t now =
  let r = rate t now in
  let eta =
    if r <= 0. then "?"
    else Printf.sprintf "%.0fs" (float_of_int (t.total - completed t) /. r)
  in
  Printf.eprintf "[%s] %d/%d  %.1f cfg/s  eta %s  cache-hit %d%%%s\n%!" t.label
    (completed t) t.total r eta (hit_pct t) (fault_suffix t)

let step ?(cache_hit = false) ?(resumed = false) ?(failed = false)
    ?(retries = 0) t =
  if t.enabled then begin
    Metrics.incr Instr.progress_completed;
    if cache_hit then Metrics.incr Instr.progress_cache_hits;
    if resumed then Metrics.incr Instr.progress_resumed;
    if failed then Metrics.incr Instr.progress_failed;
    if retries > 0 then Metrics.add Instr.progress_retried retries;
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        let now = Instr.now_s () in
        if now -. t.last_print >= min_print_interval then begin
          t.last_print <- now;
          print_line t now
        end)
  end

let finish t =
  if t.enabled then begin
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        let now = Instr.now_s () in
        Printf.eprintf
          "[%s] %d/%d done in %.1fs  (%.1f cfg/s, cache-hit %d%%%s)\n%!"
          t.label (completed t) t.total (now -. t.start) (rate t now)
          (hit_pct t) (fault_suffix t))
  end
