type t = {
  label : string;
  total : int;
  enabled : bool;
  mutex : Mutex.t;
  start : float;
  mutable completed : int;
  mutable cache_hits : int;
  mutable failed : int;
  mutable retried : int;
  mutable resumed : int;
  mutable last_print : float;
}

let min_print_interval = 0.5

let create ?(enabled = true) ~label ~total () =
  let now = Unix.gettimeofday () in
  {
    label;
    total;
    enabled;
    mutex = Mutex.create ();
    start = now;
    completed = 0;
    cache_hits = 0;
    failed = 0;
    retried = 0;
    resumed = 0;
    last_print = now;
  }

let rate t now =
  let dt = now -. t.start in
  if dt <= 0. then 0. else float_of_int t.completed /. dt

(* The fault counters only appear once nonzero, so a clean run prints the
   exact same lines it always did. *)
let fault_suffix t =
  let part name n = if n = 0 then "" else Printf.sprintf "  %s %d" name n in
  part "resumed" t.resumed ^ part "failed" t.failed ^ part "retried" t.retried

let print_line t now =
  let r = rate t now in
  let eta =
    if r <= 0. then "?" else Printf.sprintf "%.0fs" (float_of_int (t.total - t.completed) /. r)
  in
  Printf.eprintf "[%s] %d/%d  %.1f cfg/s  eta %s  cache-hit %d%%%s\n%!" t.label
    t.completed t.total r eta
    (if t.completed = 0 then 0 else 100 * t.cache_hits / t.completed)
    (fault_suffix t)

let step ?(cache_hit = false) ?(resumed = false) ?(failed = false)
    ?(retries = 0) t =
  if t.enabled then begin
    Mutex.lock t.mutex;
    t.completed <- t.completed + 1;
    if cache_hit then t.cache_hits <- t.cache_hits + 1;
    if resumed then t.resumed <- t.resumed + 1;
    if failed then t.failed <- t.failed + 1;
    t.retried <- t.retried + retries;
    let now = Unix.gettimeofday () in
    if now -. t.last_print >= min_print_interval then begin
      t.last_print <- now;
      print_line t now
    end;
    Mutex.unlock t.mutex
  end

let finish t =
  if t.enabled then begin
    Mutex.lock t.mutex;
    let now = Unix.gettimeofday () in
    Printf.eprintf
      "[%s] %d/%d done in %.1fs  (%.1f cfg/s, cache-hit %d%%%s)\n%!" t.label
      t.completed t.total (now -. t.start) (rate t now)
      (if t.completed = 0 then 0 else 100 * t.cache_hits / t.completed)
      (fault_suffix t);
    Mutex.unlock t.mutex
  end
