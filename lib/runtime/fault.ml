type kind = Crash | Delay | Corrupt

type probs = { crash : float; delay : float; corrupt : float }

type t = {
  seed : int;
  delay_s : float;
  global : probs;
  per_site : (string * kind * float) list;
}

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected where -> Some (Printf.sprintf "Fault.Injected(%s)" where)
    | _ -> None)

let no_probs = { crash = 0.; delay = 0.; corrupt = 0. }

let kind_name = function
  | Crash -> "crash"
  | Delay -> "delay"
  | Corrupt -> "corrupt"

let kind_of_name = function
  | "crash" -> Some Crash
  | "delay" -> Some Delay
  | "corrupt" -> Some Corrupt
  | _ -> None

let parse s =
  let ( let* ) = Result.bind in
  let fields =
    List.filter_map
      (fun f ->
        let f = String.trim f in
        if f = "" then None else Some f)
      (String.split_on_char ',' s)
  in
  let prob name v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | _ -> Error (Printf.sprintf "%s: probability %S not in [0,1]" name v)
  in
  let field acc f =
    let* t = acc in
    match String.index_opt f '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" f)
    | Some i -> (
        let k = String.trim (String.sub f 0 i) in
        let v = String.trim (String.sub f (i + 1) (String.length f - i - 1)) in
        match k with
        | "seed" -> (
            match int_of_string_opt v with
            | Some seed -> Ok { t with seed }
            | None -> Error (Printf.sprintf "seed: %S is not an integer" v))
        | "delay_s" -> (
            match float_of_string_opt v with
            | Some d when d >= 0. -> Ok { t with delay_s = d }
            | _ -> Error (Printf.sprintf "delay_s: %S is not a duration" v))
        | "crash" ->
            let* p = prob k v in
            Ok { t with global = { t.global with crash = p } }
        | "delay" ->
            let* p = prob k v in
            Ok { t with global = { t.global with delay = p } }
        | "corrupt" ->
            let* p = prob k v in
            Ok { t with global = { t.global with corrupt = p } }
        | _ -> (
            (* kind@site=P *)
            match String.index_opt k '@' with
            | Some j -> (
                let kn = String.sub k 0 j in
                let site = String.sub k (j + 1) (String.length k - j - 1) in
                match kind_of_name kn with
                | Some kind when site <> "" ->
                    let* p = prob k v in
                    Ok { t with per_site = (site, kind, p) :: t.per_site }
                | _ -> Error (Printf.sprintf "unknown fault kind in %S" k))
            | None -> Error (Printf.sprintf "unknown field %S" k)))
  in
  List.fold_left field
    (Ok { seed = 0; delay_s = 0.05; global = no_probs; per_site = [] })
    fields

let of_env () =
  match Sys.getenv_opt "RATS_FAULT" with
  | None -> None
  | Some s when String.trim s = "" || String.lowercase_ascii (String.trim s) = "off"
    ->
      None
  | Some s -> (
      match parse s with
      | Ok t -> Some t
      | Error reason ->
          Printf.eprintf "RATS_FAULT: %s\n%!" reason;
          exit 2)

let spec t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "seed=%d" t.seed);
  if t.delay_s <> 0.05 then
    Buffer.add_string b (Printf.sprintf ",delay_s=%g" t.delay_s);
  let add name p = if p > 0. then Buffer.add_string b (Printf.sprintf ",%s=%g" name p) in
  add "crash" t.global.crash;
  add "delay" t.global.delay;
  add "corrupt" t.global.corrupt;
  List.iter
    (fun (site, kind, p) ->
      Buffer.add_string b (Printf.sprintf ",%s@%s=%g" (kind_name kind) site p))
    (List.rev t.per_site);
  Buffer.contents b

let delay_duration t = t.delay_s

let probability t kind site =
  let override =
    List.find_map
      (fun (s, k, p) -> if s = site && k = kind then Some p else None)
      t.per_site
  in
  match override with
  | Some p -> p
  | None -> (
      match kind with
      | Crash -> t.global.crash
      | Delay -> t.global.delay
      | Corrupt -> t.global.corrupt)

(* Decision = (first 8 digest bytes of seed/kind/site/key as a uniform draw
   in [0,1)) < probability. MD5 is plenty for spreading decisions; no
   shared state, so the decision is identical across worker interleavings. *)
let draw t kind ~site ~key =
  let d =
    Digest.string
      (Printf.sprintf "%d\x00%s\x00%s\x00%s" t.seed (kind_name kind) site key)
  in
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8)
              (Int64.of_int (Char.code d.[i]))
  done;
  Int64.to_float (Int64.shift_right_logical !bits 11) /. 9007199254740992.

let fires t kind ~site ~key =
  let p = probability t kind site in
  p > 0. && draw t kind ~site ~key < p

let injected () = Rats_obs.Metrics.incr Rats_obs.Instr.fault_injections

let crash_point t ~site ~key =
  match t with
  | Some t when fires t Crash ~site ~key ->
      injected ();
      raise (Injected (Printf.sprintf "%s:%s" site key))
  | _ -> ()

let delay_point t ~site ~key =
  match t with
  | Some t when fires t Delay ~site ~key ->
      injected ();
      Unix.sleepf t.delay_s
  | _ -> ()

let corrupt_payload t ~site ~key payload =
  match t with
  | Some t when fires t Corrupt ~site ~key ->
      injected ();
      let n = String.length payload in
      if n = 0 then "\xff"
      else begin
        (* Truncate to half and flip a bit in the first byte: defeats both
           length- and content-based validation. *)
        let b = Bytes.of_string (String.sub payload 0 (max 1 (n / 2))) in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
        Bytes.to_string b
      end
  | _ -> payload
