let recoverable = function
  | Out_of_memory | Stack_overflow | Sys.Break -> false
  | _ -> true
