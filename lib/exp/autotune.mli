(** Automatic parameter tuning (the paper's §V future work).

    The paper tunes (mindelta, maxdelta, minrho) offline per application
    type and cluster (Table IV) and "plans to allow the automatic tuning of
    the scheduling algorithm". This module implements two automatic
    selectors:

    - {b probe}: before committing to a schedule, run the whole parameter
      grid through the {e mapping step only} and keep the parameters with
      the best {e estimated} makespan. Mapping is three orders of magnitude
      cheaper than simulation, so probing the full grid costs less than one
      simulation; its blind spot is exactly the mapping estimate's blind
      spot (network contention).
    - {b rules}: closed-form parameter choices from application/platform
      features — the average parallelism [A], the communication-to-
      computation ratio (CCR), and the machine-to-application size ratio
      [P/A] — distilled from the Figure 4/5 sweeps: stretching wants to be
      generous everywhere ([maxdelta = 1]); packing pays only when the
      platform is crowded ([P/A] small); [minrho] loosens as communication
      dominates. *)

type features = {
  avg_parallelism : float;  (** [A = W₁ / D₁]. *)
  ccr : float;
      (** Σ edge transfer estimates / Σ sequential task times — > 1 means
          communication dominates. *)
  procs_per_parallelism : float;  (** [P / A]. *)
}

val features : Rats_core.Problem.t -> features

val probe_delta : Rats_core.Problem.t -> Rats_core.Rats.delta_params
(** Grid arg-min of the {e estimated} makespan (shares the HCPA allocation
    across probes). *)

val probe_timecost : Rats_core.Problem.t -> Rats_core.Rats.timecost_params

val probe : Rats_core.Problem.t -> Rats_core.Rats.strategy
(** The better of the two probed strategies, by estimated makespan. *)

val rules_delta : features -> Rats_core.Rats.delta_params
val rules_timecost : features -> Rats_core.Rats.timecost_params

val selector_study :
  ?exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t -> Rats_daggen.Suite.config list ->
  (string * float) list
(** Mean {e simulated} makespan relative to HCPA for each selector — naive
    delta, naive time-cost, probe, rules-delta, rules-time-cost — over the
    given configurations. The evaluation of the automatic tuners. With a
    cache the whole study is one entry, keyed by cluster signature,
    configuration set and probe grids; it is only stored when no
    configuration was lost to an injected or real fault. *)
