(** Communication-intensity crossover study.

    The paper targets applications "dominated by the data for which the
    communication costs cannot be neglected" (§I) but never varies that
    dominance. This sweep does: each application's computation amounts are
    scaled by a factor (datasets and hence transfer volumes stay fixed), so
    the communication-to-computation ratio moves from compute-dominated
    (large factor) to data-dominated (small factor). The redistribution
    savings of RATS should matter most at high CCR and fade as computation
    takes over — locating the crossover validates the paper's premise. *)

val flop_factors : float list
(** {8, 4, 2, 1, 1/2, 1/4} — CCR grows along the list. *)

type point = {
  flop_factor : float;
  ccr : float;  (** Mean bytes-transfer-time / computation-time ratio. *)
  delta_relative : float;  (** Mean makespan vs HCPA, naive delta. *)
  timecost_relative : float;
}

val run :
  ?exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t -> Rats_daggen.Suite.config list -> point list
(** Parallel over configurations within each flop factor; with a cache, the
    (ccr, delta, time-cost) triple of every (configuration, factor) cell is
    cached — and journaled — individually, so an interrupted sweep resumes
    at cell granularity. Failed cells drop out of their factor's averages;
    a factor that lost every cell yields no point. *)

val print : Format.formatter -> point list -> unit
