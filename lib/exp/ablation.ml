module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Topology = Rats_platform.Topology
module Core = Rats_core
module Stats = Rats_util.Stats
module Pool = Rats_runtime.Pool
module Cache = Rats_runtime.Cache
module Exec = Rats_runtime.Exec

type ratio_row = {
  label : string;
  mean_ratio : float;
  max_ratio : float;
}

(* Study-level caching: each study's whole row set is one cache entry keyed
   by study name, cluster signature and configuration set. Labels may
   contain spaces, so rows serialize as tab-separated lines. *)
let study_key study cluster configs =
  Cache.key
    ([ "ablation." ^ study; Cluster.signature cluster ]
    @ List.map Suite.name configs)

let encode_rows rows =
  String.concat "\n"
    (List.map
       (fun r -> Printf.sprintf "%s\t%h\t%h" r.label r.mean_ratio r.max_ratio)
       rows)

let decode_rows payload =
  let decode_row line =
    match String.split_on_char '\t' line with
    | [ label; mean; max ] -> (
        try
          Some
            {
              label;
              mean_ratio = float_of_string mean;
              max_ratio = float_of_string max;
            }
        with Failure _ -> None)
    | _ -> None
  in
  let rows = List.map decode_row (String.split_on_char '\n' payload) in
  if List.for_all Option.is_some rows then
    Some (List.filter_map Fun.id rows)
  else None

let cached_study ~exec ~study ~encode ~decode cluster configs compute =
  match exec.Exec.cache with
  | None -> compute ()
  | Some c -> (
      let key = study_key study cluster configs in
      match Option.bind (Cache.find c key) decode with
      | Some v -> v
      | None ->
          (* Whole-study entries must not capture rows computed while
             configurations were being dropped to faults. *)
          let v, clean = Exec.computed_cleanly exec compute in
          if clean then Cache.store c key (encode v);
          v)

(* Per-configuration scheduling is the expensive, fault-prone unit; a
   failed configuration drops out of the study averages and is counted in
   [exec.stats]. The cheap re-measurements below stay on the plain pool. *)
let schedules_for ~exec cluster configs strategy =
  Exec.map exec
    ~name:(fun c ->
      "ablation.schedule/" ^ cluster.Cluster.name ^ "/" ^ Suite.name c)
    ~f:(fun config ->
      let dag = Suite.generate config in
      let problem = Core.Problem.make ~dag ~cluster in
      Core.Rats.schedule problem strategy)
    configs
  |> Exec.oks

let ratio_study ~exec cluster configs ~ablated ~full =
  let jobs = exec.Exec.jobs in
  List.map
    (fun (label, strategy) ->
      let ratios =
        Pool.map ~jobs
          (fun s ->
            let a = (ablated s : Core.Evaluate.result) in
            let f = (full s : Core.Evaluate.result) in
            a.Core.Evaluate.makespan /. f.Core.Evaluate.makespan)
          (schedules_for ~exec cluster configs strategy)
        |> Array.of_list
      in
      {
        label;
        mean_ratio = Stats.mean ratios;
        max_ratio = snd (Stats.min_max ratios);
      })
    [
      ("hcpa", Core.Rats.Baseline);
      ("time-cost", Core.Rats.Timecost Core.Rats.naive_timecost);
    ]

let placement_study ?(exec = Exec.make ()) cluster configs =
  cached_study ~exec ~study:"placement" ~encode:encode_rows
    ~decode:decode_rows cluster configs (fun () ->
      ratio_study ~exec cluster configs
        ~ablated:(Core.Evaluate.run ~optimize_placement:false)
        ~full:(Core.Evaluate.run ~optimize_placement:true))

let replay_study ?(exec = Exec.make ()) cluster configs =
  cached_study ~exec ~study:"replay" ~encode:encode_rows ~decode:decode_rows
    cluster configs (fun () ->
      ratio_study ~exec cluster configs
        ~ablated:(Core.Evaluate.run ~work_conserving:false)
        ~full:(Core.Evaluate.run ~work_conserving:true))

let window_values =
  [ 16. *. 1024.; 65536.; 262144.; 1048576.; 4. *. 1048576. ]

let window_study ?(exec = Exec.make ()) configs =
  List.map
    (fun tcp_wmax ->
      (* The window value is part of the cluster signature, so each window
         point caches under its own key. *)
      let cluster =
        Cluster.make ~name:"grelon-like"
          ~topology:(Topology.Cabinets { cabinets = 5; per_cabinet = 24 })
          ~speed_gflops:3.185 ~tcp_wmax ()
      in
      let mean =
        cached_study ~exec ~study:"window"
          ~encode:(Printf.sprintf "%h")
          ~decode:(fun s ->
            match float_of_string_opt s with Some v -> Some v | None -> None)
          cluster configs
          (fun () ->
            Stats.mean
              (Array.of_list
                 (Pool.map ~jobs:exec.Exec.jobs
                    (fun s -> (Core.Evaluate.run s).Core.Evaluate.makespan)
                    (schedules_for ~exec cluster configs Core.Rats.Baseline))))
      in
      (tcp_wmax, mean))
    window_values

let purity_rows ~exec cluster configs =
  let jobs = exec.Exec.jobs in
  let problems =
    Exec.map exec
      ~name:(fun c ->
        "ablation.problem/" ^ cluster.Cluster.name ^ "/" ^ Suite.name c)
      ~f:(fun config -> Core.Problem.make ~dag:(Suite.generate config) ~cluster)
      configs
    |> Exec.oks
  in
  let mean_of schedules =
    Stats.mean
      (Array.of_list
         (Pool.map ~jobs
            (fun s -> (Core.Evaluate.run s).Core.Evaluate.makespan)
            schedules))
  in
  let timecost =
    mean_of
      (Pool.map ~jobs
         (fun p -> Core.Rats.schedule p (Core.Rats.Timecost Core.Rats.naive_timecost))
         problems)
  in
  let rows =
    [
      ("time-cost RATS", timecost);
      ("hcpa", mean_of (Pool.map ~jobs (fun p -> Core.Rats.schedule p Core.Rats.Baseline) problems));
      ("pure data-parallel", mean_of (Pool.map ~jobs Core.Reference.data_parallel problems));
      ("pure task-parallel", mean_of (Pool.map ~jobs Core.Reference.task_parallel problems));
    ]
  in
  List.map (fun (label, v) -> (label, v /. timecost)) rows

let purity_study ?(exec = Exec.make ()) cluster configs =
  let encode rows =
    String.concat "\n"
      (List.map (fun (label, v) -> Printf.sprintf "%s\t%h" label v) rows)
  in
  let decode payload =
    let row line =
      match String.split_on_char '\t' line with
      | [ label; v ] -> (
          match float_of_string_opt v with
          | Some v -> Some (label, v)
          | None -> None)
      | _ -> None
    in
    let rows = List.map row (String.split_on_char '\n' payload) in
    if List.for_all Option.is_some rows then Some (List.filter_map Fun.id rows)
    else None
  in
  cached_study ~exec ~study:"purity" ~encode ~decode cluster configs
    (fun () -> purity_rows ~exec cluster configs)

(* A small, shape-diverse subset keeps the studies affordable. *)
let study_configs scale =
  let all = Suite.all scale in
  let firsts = List.filter (fun c -> c.Suite.sample = 0) all in
  let n = List.length firsts in
  let cap = 20 in
  if n <= cap then firsts
  else List.filteri (fun i _ -> i * cap / n <> (i - 1) * cap / n) firsts

let print_all ?exec ppf scale =
  let configs = study_configs scale in
  let cluster = Cluster.grillon in
  Format.fprintf ppf
    "Ablation studies (%d configurations, %s cluster unless noted)@."
    (List.length configs) cluster.Cluster.name;
  Format.fprintf ppf
    "@.1. Self-communication-maximizing placement (natural / optimized):@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "   %-12s mean x%.3f, worst x%.3f@." r.label
        r.mean_ratio r.max_ratio)
    (placement_study ?exec cluster configs);
  Format.fprintf ppf
    "@.2. Work-conserving replay (strict-order / work-conserving):@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "   %-12s mean x%.3f, worst x%.3f@." r.label
        r.mean_ratio r.max_ratio)
    (replay_study ?exec cluster configs);
  Format.fprintf ppf
    "@.3. TCP window sensitivity (grelon-like hierarchical cluster):@.";
  List.iter
    (fun (wmax, makespan) ->
      Format.fprintf ppf "   Wmax=%8.0fKiB  mean makespan %10.2fs@."
        (wmax /. 1024.) makespan)
    (window_study ?exec configs);
  Format.fprintf ppf
    "@.4. Mixed parallelism vs pure corners (relative to time-cost RATS):@.";
  List.iter
    (fun (label, v) -> Format.fprintf ppf "   %-20s x%.3f@." label v)
    (purity_study ?exec cluster configs)
