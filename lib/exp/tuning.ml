module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Stats = Rats_util.Stats
module Cache = Rats_runtime.Cache
module Exec = Rats_runtime.Exec

let mindelta_values = [ 0.; -0.25; -0.5; -0.75 ]
let maxdelta_values = [ 0.; 0.25; 0.5; 0.75; 1. ]
let minrho_values = [ 0.2; 0.4; 0.5; 0.6; 0.8; 1. ]

type prepared = {
  problem : Core.Problem.t;
  alloc : int array;
  hcpa_makespan : float;
}

(* A failed unit drops out of the average (counted and reported through
   [exec.stats], never silently): sweeps degrade gracefully instead of
   losing hours of grid replays to one bad configuration. *)
let prepare ?(exec = Exec.make ()) cluster configs =
  Exec.map exec
    ~name:(fun c ->
      "tuning.prepare/" ^ cluster.Cluster.name ^ "/" ^ Suite.name c)
    ~f:(fun config ->
      let dag = Suite.generate config in
      let problem = Core.Problem.make ~dag ~cluster in
      let alloc = Core.Hcpa.allocate problem in
      let hcpa =
        Runner.strategy_measurement ~alloc problem Core.Rats.Baseline
      in
      { problem; alloc; hcpa_makespan = hcpa.Runner.makespan })
    configs
  |> Exec.oks

let configs_of_kind scale kind =
  List.filter (fun c -> Suite.kind c = kind) (Suite.all scale)

let tuning_configs scale kind =
  let firsts =
    List.filter (fun c -> c.Suite.sample = 0) (configs_of_kind scale kind)
  in
  let n = List.length firsts in
  let cap = 24 in
  if n <= cap then firsts
  else
    (* Even thinning keeps the whole shape spectrum represented. *)
    List.filteri (fun i _ -> i * cap / n <> (i - 1) * cap / n) firsts

let average_relative prepared strategy =
  let ratios =
    List.map
      (fun p ->
        let m = Runner.strategy_measurement ~alloc:p.alloc p.problem strategy in
        m.Runner.makespan /. p.hcpa_makespan)
      prepared
  in
  Stats.mean (Array.of_list ratios)

type delta_point = {
  mindelta : float;
  maxdelta : float;
  avg_relative_makespan : float;
}

(* The sweeps parallelize over grid points — each point replays every
   prepared configuration, so points are the coarsest independent unit. A
   failed point is dropped; the figure printers render missing grid points
   as "-". *)
let sweep_delta ?(exec = Exec.make ()) prepared =
  let grid =
    List.concat_map
      (fun mindelta -> List.map (fun maxdelta -> (mindelta, maxdelta)) maxdelta_values)
      mindelta_values
  in
  Exec.map exec
    ~name:(fun (mindelta, maxdelta) ->
      Printf.sprintf "tuning.sweep_delta/min=%g,max=%g" mindelta maxdelta)
    ~f:(fun (mindelta, maxdelta) ->
      let strategy = Core.Rats.Delta { mindelta; maxdelta } in
      {
        mindelta;
        maxdelta;
        avg_relative_makespan = average_relative prepared strategy;
      })
    grid
  |> Exec.oks

type timecost_point = {
  packing : bool;
  minrho : float;
  avg_relative_makespan : float;
}

let sweep_timecost ?(exec = Exec.make ()) prepared =
  let grid =
    List.concat_map
      (fun packing -> List.map (fun minrho -> (packing, minrho)) minrho_values)
      [ false; true ]
  in
  Exec.map exec
    ~name:(fun (packing, minrho) ->
      Printf.sprintf "tuning.sweep_timecost/packing=%b,rho=%g" packing minrho)
    ~f:(fun (packing, minrho) ->
      let strategy = Core.Rats.Timecost { minrho; packing } in
      {
        packing;
        minrho;
        avg_relative_makespan = average_relative prepared strategy;
      })
    grid
  |> Exec.oks

(* Cached whole-sweep variants: the full point list of a (cluster,
   configuration set) sweep is one cache entry, so a warm Figure 4/5
   regeneration skips prepare and every grid replay. *)

let sweep_key sweep cluster configs =
  Cache.key
    ([
       "tuning." ^ sweep;
       Cluster.signature cluster;
       String.concat "," (List.map (fun v -> Printf.sprintf "%h" v) mindelta_values);
       String.concat "," (List.map (fun v -> Printf.sprintf "%h" v) maxdelta_values);
       String.concat "," (List.map (fun v -> Printf.sprintf "%h" v) minrho_values);
     ]
    @ List.map Suite.name configs)

(* Whole-sweep entries aggregate many units of work, so a sweep computed
   while tasks were failing must not be stored: a later warm run would
   replay the degraded averages as if they were complete. *)
let computed_cleanly = Exec.computed_cleanly

let cached_points ~exec ~sweep ~encode ~decode cluster configs compute =
  match exec.Exec.cache with
  | None -> compute ()
  | Some c -> (
      let key = sweep_key sweep cluster configs in
      let decode_all payload =
        let points = List.map decode (String.split_on_char '\n' payload) in
        if points <> [] && List.for_all Option.is_some points then
          Some (List.filter_map Fun.id points)
        else None
      in
      match Option.bind (Cache.find c key) decode_all with
      | Some points -> points
      | None ->
          let points, clean = computed_cleanly exec compute in
          if clean then
            Cache.store c key (String.concat "\n" (List.map encode points));
          points)

let sweep_delta_for ?(exec = Exec.make ()) cluster configs =
  cached_points ~exec ~sweep:"sweep_delta"
    ~encode:(fun (p : delta_point) ->
      Printf.sprintf "%h %h %h" p.mindelta p.maxdelta p.avg_relative_makespan)
    ~decode:(fun line ->
      match String.split_on_char ' ' line with
      | [ a; b; c ] -> (
          try
            Some
              {
                mindelta = float_of_string a;
                maxdelta = float_of_string b;
                avg_relative_makespan = float_of_string c;
              }
          with Failure _ -> None)
      | _ -> None)
    cluster configs
    (fun () -> sweep_delta ~exec (prepare ~exec cluster configs))

let sweep_timecost_for ?(exec = Exec.make ()) cluster configs =
  cached_points ~exec ~sweep:"sweep_timecost"
    ~encode:(fun (p : timecost_point) ->
      Printf.sprintf "%b %h %h" p.packing p.minrho p.avg_relative_makespan)
    ~decode:(fun line ->
      match String.split_on_char ' ' line with
      | [ a; b; c ] -> (
          try
            Some
              {
                packing = bool_of_string a;
                minrho = float_of_string b;
                avg_relative_makespan = float_of_string c;
              }
          with Failure _ | Invalid_argument _ -> None)
      | _ -> None)
    cluster configs
    (fun () -> sweep_timecost ~exec (prepare ~exec cluster configs))

type tuned = { delta : Core.Rats.delta_params; minrho : float }

let best delta_points timecost_points =
  let best_delta =
    List.fold_left
      (fun (acc : delta_point option) (p : delta_point) ->
        match acc with
        | Some b when b.avg_relative_makespan <= p.avg_relative_makespan -> acc
        | _ -> Some p)
      None delta_points
  in
  let best_tc =
    List.fold_left
      (fun (acc : timecost_point option) p ->
        if not p.packing then acc
        else
          match acc with
          | Some b when b.avg_relative_makespan <= p.avg_relative_makespan -> acc
          | _ -> Some p)
      None timecost_points
  in
  match (best_delta, best_tc) with
  | Some d, Some t ->
      {
        delta = { Core.Rats.mindelta = d.mindelta; maxdelta = d.maxdelta };
        minrho = t.minrho;
      }
  | _ -> invalid_arg "Tuning.best: empty sweep"

let kinds : Suite.app_kind list = [ `Fft; `Strassen; `Layered; `Irregular ]

(* One cache entry per (cluster, kind) cell of Table IV; a hit skips the
   whole prepare + sweep pipeline for that cell. The key covers everything
   the tuned values depend on: cluster, configuration set, and both grids. *)
let tuned_key cluster kind configs =
  Cache.key
    ([
       "tuning.table4";
       Cluster.signature cluster;
       Suite.kind_name kind;
       String.concat "," (List.map (fun v -> Printf.sprintf "%h" v) mindelta_values);
       String.concat "," (List.map (fun v -> Printf.sprintf "%h" v) maxdelta_values);
       String.concat "," (List.map (fun v -> Printf.sprintf "%h" v) minrho_values);
     ]
    @ List.map Suite.name configs)

let encode_tuned t =
  Printf.sprintf "%h %h %h" t.delta.Core.Rats.mindelta
    t.delta.Core.Rats.maxdelta t.minrho

let decode_tuned payload =
  match String.split_on_char ' ' payload with
  | [ a; b; c ] -> (
      try
        Some
          {
            delta =
              {
                Core.Rats.mindelta = float_of_string a;
                maxdelta = float_of_string b;
              };
            minrho = float_of_string c;
          }
      with Failure _ -> None)
  | _ -> None

let tune_cell ?(exec = Exec.make ()) cluster kind configs =
  let compute () =
    let prepared = prepare ~exec cluster configs in
    best (sweep_delta ~exec prepared) (sweep_timecost ~exec prepared)
  in
  match exec.Exec.cache with
  | None -> compute ()
  | Some cache -> (
      let key = tuned_key cluster kind configs in
      match Option.bind (Cache.find cache key) decode_tuned with
      | Some tuned -> tuned
      | None ->
          let tuned, clean = computed_cleanly exec compute in
          if clean then Cache.store cache key (encode_tuned tuned);
          tuned)

let table4 ?exec scale =
  List.map
    (fun cluster ->
      let per_kind =
        List.map
          (fun kind ->
            (kind, tune_cell ?exec cluster kind (tuning_configs scale kind)))
          kinds
      in
      (cluster.Cluster.name, per_kind))
    Cluster.presets

let tuned_for table ~cluster ~kind = List.assoc kind (List.assoc cluster table)
