module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Dag = Rats_dag.Dag
module Task = Rats_dag.Task
module Core = Rats_core
module Stats = Rats_util.Stats
module Cache = Rats_runtime.Cache
module Exec = Rats_runtime.Exec

let flop_factors = [ 8.; 4.; 2.; 1.; 0.5; 0.25 ]

type point = {
  flop_factor : float;
  ccr : float;
  delta_relative : float;
  timecost_relative : float;
}

let scale_flop dag factor =
  Dag.map_tasks dag ~f:(fun t ->
      Task.make ~id:t.Task.id ~name:t.Task.name
        ~data_elements:t.Task.data_elements ~flop:(factor *. t.Task.flop)
        ~alpha:t.Task.alpha)

let cell_key cluster config flop_factor =
  Cache.key
    [
      "ccr_sweep.cell";
      Cluster.signature cluster;
      Suite.name config;
      Printf.sprintf "%h" flop_factor;
    ]

let encode_cell (ccr, d, t) = Printf.sprintf "%h %h %h" ccr d t

let decode_cell payload =
  match String.split_on_char ' ' payload with
  | [ a; b; c ] -> (
      try Some (float_of_string a, float_of_string b, float_of_string c)
      with Failure _ -> None)
  | _ -> None

let measure_cell cluster config flop_factor =
  let dag = scale_flop (Suite.generate config) flop_factor in
  let problem = Core.Problem.make ~dag ~cluster in
  let alloc = Core.Hcpa.allocate problem in
  let m strategy =
    (Core.Algorithms.run ~alloc problem strategy).Core.Algorithms.simulated
      .Core.Evaluate.makespan
  in
  let hcpa = m Core.Rats.Baseline in
  let ccr = (Autotune.features problem).Autotune.ccr in
  ( ccr,
    m (Core.Rats.Delta Core.Rats.naive_delta) /. hcpa,
    m (Core.Rats.Timecost Core.Rats.naive_timecost) /. hcpa )

(* Each (configuration, factor) cell goes through the full stack — cache,
   journal, fault points, retries — so an interrupted sweep resumes at cell
   granularity. *)
let cell ~exec cluster config flop_factor =
  Exec.keyed exec
    ~name:
      (Printf.sprintf "ccr/%s/%s@x%g" cluster.Cluster.name (Suite.name config)
         flop_factor)
    ~key:(cell_key cluster config flop_factor)
    ~encode:encode_cell ~decode:decode_cell
    (fun () -> measure_cell cluster config flop_factor)

let run ?(exec = Exec.make ()) cluster configs =
  List.filter_map
    (fun flop_factor ->
      let outcomes =
        Exec.map_outcome exec
          ~run:(fun config -> cell ~exec cluster config flop_factor)
          configs
      in
      let measurements =
        List.filter_map (fun o -> Result.to_option o.Exec.value) outcomes
      in
      (* A factor whose cells all failed yields no point rather than NaN
         columns; partially failed factors average the surviving cells. *)
      if measurements = [] then None
      else
        let col f = Stats.mean (Array.of_list (List.map f measurements)) in
        Some
          {
            flop_factor;
            ccr = col (fun (c, _, _) -> c);
            delta_relative = col (fun (_, d, _) -> d);
            timecost_relative = col (fun (_, _, t) -> t);
          })
    flop_factors

let print ppf points =
  Format.fprintf ppf
    "CCR crossover: makespan relative to HCPA as communication dominance \
     varies@.";
  Format.fprintf ppf "  %10s %8s %8s %10s@." "flop-scale" "CCR" "delta"
    "time-cost";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %10.2f %8.2f %8.3f %10.3f@." p.flop_factor p.ccr
        p.delta_relative p.timecost_relative)
    points
