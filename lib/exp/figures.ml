module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Block = Rats_redist.Block

let table1 ppf =
  Format.fprintf ppf
    "Table I: communication matrix, 10 units, p=4 senders -> q=5 receivers@.";
  let entries = Block.comm_matrix ~amount:10. ~senders:4 ~receivers:5 in
  Format.fprintf ppf "      ";
  for j = 0 to 4 do
    Format.fprintf ppf "   q%d " (j + 1)
  done;
  Format.fprintf ppf "@.";
  for i = 0 to 3 do
    Format.fprintf ppf "  p%d  " (i + 1);
    for j = 0 to 4 do
      match List.find_opt (fun (a, b, _) -> a = i && b = j) entries with
      | Some (_, _, v) -> Format.fprintf ppf "%5.2g " v
      | None -> Format.fprintf ppf "    . "
    done;
    Format.fprintf ppf "@."
  done

let table2 ppf =
  Format.fprintf ppf "Table II: cluster characteristics@.";
  List.iter (fun c -> Format.fprintf ppf "  %a@." Cluster.pp c) Cluster.presets

let table3 ppf scale =
  Format.fprintf ppf "Table III: random DAG generation parameters@.";
  Format.fprintf ppf "  #tasks: 25, 50, 100; width: 0.2/0.5/0.8; density: 0.2/0.8;@.";
  Format.fprintf ppf "  regularity: 0.2/0.8; jump (irregular): 1/2/4; alpha: [0, 0.25]@.";
  let count k =
    List.length (List.filter (fun c -> Suite.kind c = k) (Suite.all scale))
  in
  Format.fprintf ppf
    "  configurations at this scale: layered %d, irregular %d, fft %d, \
     strassen %d, total %d@."
    (count `Layered) (count `Irregular) (count `Fft) (count `Strassen)
    (Suite.n_configs scale)

let print_series ppf title series =
  Format.fprintf ppf "%s@." title;
  List.iter
    (fun (s : Metrics.series) ->
      let mean, wins = Metrics.mean_and_win_fraction s in
      let n = Array.length s.Metrics.values in
      Format.fprintf ppf "  %-10s n=%d mean=%.3f improved-in=%.0f%%@."
        s.Metrics.label n mean (100. *. wins);
      Format.fprintf ppf "    percentiles:";
      List.iter
        (fun p ->
          let idx = min (n - 1) (p * (n - 1) / 100) in
          Format.fprintf ppf " p%d=%.3f" p s.Metrics.values.(idx))
        [ 0; 10; 25; 50; 75; 90; 100 ];
      Format.fprintf ppf "@.")
    series

let fig2 ppf results =
  print_series ppf
    "Figure 2: makespan relative to HCPA (naive parameters), sorted series"
    (Metrics.relative_makespan results)

let fig3 ppf results =
  print_series ppf
    "Figure 3: work relative to HCPA (naive parameters), sorted series"
    (Metrics.relative_work results)

let fig4 ppf points =
  Format.fprintf ppf
    "Figure 4: delta strategy, avg makespan relative to HCPA over \
     (mindelta, maxdelta)@.";
  Format.fprintf ppf "  %9s" "min\\max";
  List.iter (fun v -> Format.fprintf ppf " %6.2f" v) Tuning.maxdelta_values;
  Format.fprintf ppf "@.";
  List.iter
    (fun mindelta ->
      Format.fprintf ppf "  %9.2f" mindelta;
      List.iter
        (fun maxdelta ->
          match
            List.find_opt
              (fun (p : Tuning.delta_point) ->
                p.Tuning.mindelta = mindelta && p.Tuning.maxdelta = maxdelta)
              points
          with
          | Some p -> Format.fprintf ppf " %6.3f" p.Tuning.avg_relative_makespan
          | None -> Format.fprintf ppf "      -")
        Tuning.maxdelta_values;
      Format.fprintf ppf "@.")
    Tuning.mindelta_values

let fig5 ppf points =
  Format.fprintf ppf
    "Figure 5: time-cost strategy, avg makespan relative to HCPA vs minrho@.";
  List.iter
    (fun packing ->
      Format.fprintf ppf "  packing %-3s:" (if packing then "on" else "off");
      List.iter
        (fun minrho ->
          match
            List.find_opt
              (fun (p : Tuning.timecost_point) ->
                p.Tuning.packing = packing && p.Tuning.minrho = minrho)
              points
          with
          | Some p ->
              Format.fprintf ppf " rho=%.1f:%.3f" minrho
                p.Tuning.avg_relative_makespan
          | None -> ())
        Tuning.minrho_values;
      Format.fprintf ppf "@.")
    [ false; true ]

let table4 ppf table =
  Format.fprintf ppf
    "Table IV: tuned (mindelta, maxdelta, minrho) per application and cluster@.";
  Format.fprintf ppf "  %-8s" "";
  List.iter
    (fun k -> Format.fprintf ppf " %18s" (Suite.kind_name k))
    [ `Fft; `Strassen; `Layered; `Irregular ];
  Format.fprintf ppf "@.";
  List.iter
    (fun (cluster, per_kind) ->
      Format.fprintf ppf "  %-8s" cluster;
      List.iter
        (fun kind ->
          let t = List.assoc kind per_kind in
          Format.fprintf ppf " (%5.2f,%5.2f,%4.2f)"
            t.Tuning.delta.Core.Rats.mindelta t.Tuning.delta.Core.Rats.maxdelta
            t.Tuning.minrho)
        [ `Fft; `Strassen; `Layered; `Irregular ];
      Format.fprintf ppf "@.")
    table

let fig6 ppf results =
  print_series ppf
    "Figure 6: makespan relative to HCPA (tuned parameters), sorted series"
    (Metrics.relative_makespan results)

let fig7 ppf results =
  print_series ppf
    "Figure 7: work relative to HCPA (tuned parameters), sorted series"
    (Metrics.relative_work results)

let table5 ppf per_cluster =
  Format.fprintf ppf
    "Table V: pairwise comparison (better/equal/worse), cells %s@."
    (String.concat " / " (List.map fst per_cluster));
  let tables = List.map (fun (_, r) -> snd (Metrics.pairwise r)) per_cluster in
  let labels = [| "HCPA"; "delta"; "time-cost" |] in
  for i = 0 to 2 do
    Format.fprintf ppf "  %-9s vs:" labels.(i);
    for j = 0 to 2 do
      if i <> j then begin
        Format.fprintf ppf "  %s[" labels.(j);
        List.iteri
          (fun k m ->
            let c = m.(i).(j) in
            Format.fprintf ppf "%s%d/%d/%d"
              (if k > 0 then " " else "")
              c.Metrics.better c.Metrics.equal c.Metrics.worse)
          tables;
        Format.fprintf ppf "]"
      end
    done;
    Format.fprintf ppf "@.";
    Format.fprintf ppf "    combined %%:";
    List.iter
      (fun m ->
        let _, pct = Metrics.combined_percent m i in
        Format.fprintf ppf " %.1f/%.1f/%.1f" pct.(0) pct.(1) pct.(2))
      tables;
    Format.fprintf ppf "@."
  done

let table6 ppf per_cluster =
  Format.fprintf ppf "Table VI: average degradation from best@.";
  List.iter
    (fun (cluster, results) ->
      Format.fprintf ppf "  %s:@." cluster;
      List.iter
        (fun (d : Metrics.degradation) ->
          Format.fprintf ppf
            "    %-9s avg-over-all=%6.2f%%  #not-best=%3d  \
             avg-over-not-best=%6.2f%%@."
            d.Metrics.label d.Metrics.avg_over_all d.Metrics.n_not_best
            d.Metrics.avg_over_not_best)
        (Metrics.degradation_from_best results))
    per_cluster

let run_tuned_suite ?(exec = Rats_runtime.Exec.make ()) scale table cluster =
  let module Exec = Rats_runtime.Exec in
  Exec.map_outcome exec
    ~run:(fun config ->
      let tuned =
        Tuning.tuned_for table ~cluster:cluster.Cluster.name
          ~kind:(Suite.kind config)
      in
      Runner.run_config_outcome ~delta:tuned.Tuning.delta
        ~timecost:{ Core.Rats.minrho = tuned.Tuning.minrho; packing = true }
        ~exec cluster config)
    (Suite.all scale)
  |> List.filter_map (fun o -> Result.to_option o.Exec.value)

let write_csv path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        "config,cluster,kind,hcpa_makespan,delta_makespan,timecost_makespan,\
         hcpa_work,delta_work,timecost_work\n";
      List.iter
        (fun (r : Runner.result) ->
          Printf.fprintf oc "%s,%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n"
            (Suite.name r.Runner.config)
            r.Runner.cluster
            (Suite.kind_name (Suite.kind r.Runner.config))
            r.Runner.hcpa.Runner.makespan r.Runner.delta.Runner.makespan
            r.Runner.timecost.Runner.makespan r.Runner.hcpa.Runner.work
            r.Runner.delta.Runner.work r.Runner.timecost.Runner.work)
        results)
