(** Ablation studies of the design choices DESIGN.md calls out.

    Four questions, each answered by re-measuring the same schedules with
    one mechanism disabled:

    - {b placement}: how much does the self-communication-maximizing
      receiver placement (paper §II-A) save, versus naturally ordered
      receiver ranks?
    - {b replay}: how much does the work-conserving execution discipline
      save versus strictly serving each processor in the mapper's order
      (head-of-line blocking)?
    - {b window}: how sensitive are makespans to SimGrid's empirical TCP
      bandwidth [β' = min(β, Wmax/RTT)]? Swept on a hierarchical cluster,
      where 4-hop routes make the window bind first.
    - {b purity}: mixed parallelism versus its two degenerate corners —
      pure data parallelism and pure task parallelism (the motivation of
      the paper's reference [1]).

    Studies run through an optional {!Rats_runtime.Exec} context (default:
    serial, no cache, no faults). Under fault injection a configuration
    that exhausts its retries drops out of the study averages (counted in
    [exec.stats]); a study that lost any configuration is never stored as a
    whole-study cache entry. *)

type ratio_row = {
  label : string;
  mean_ratio : float;  (** ablated / full, > 1 means the mechanism helps. *)
  max_ratio : float;
}

val placement_study :
  ?exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t -> Rats_daggen.Suite.config list -> ratio_row list
(** One row per mapping strategy (HCPA baseline and time-cost RATS). All
    studies execute on the context's worker pool and, when it carries a
    cache, persist their full row set as one {!Rats_runtime.Cache} entry
    keyed by study name, cluster signature and configuration set. *)

val replay_study :
  ?exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t -> Rats_daggen.Suite.config list -> ratio_row list

val window_study :
  ?exec:Rats_runtime.Exec.t ->
  Rats_daggen.Suite.config list -> (float * float) list
(** [(tcp_wmax bytes, mean simulated makespan)] of HCPA schedules on a
    grelon-like hierarchical cluster, for windows from 16 KiB to 4 MiB. *)

val purity_study :
  ?exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t -> Rats_daggen.Suite.config list ->
  (string * float) list
(** Mean simulated makespan of each strategy — time-cost RATS, HCPA, pure
    data-parallel, pure task-parallel — normalized to time-cost RATS. *)

val study_configs :
  Rats_daggen.Suite.scale -> Rats_daggen.Suite.config list
(** The thinned, shape-diverse configuration subset (≤ 20) the combined
    studies run on. *)

val print_all :
  ?exec:Rats_runtime.Exec.t ->
  Format.formatter -> Rats_daggen.Suite.scale -> unit
(** Runs all four studies on {!study_configs} and prints them. *)
