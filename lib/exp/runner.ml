module Suite = Rats_daggen.Suite
module Cluster = Rats_platform.Cluster
module Core = Rats_core
module Cache = Rats_runtime.Cache
module Exec = Rats_runtime.Exec
module Retry = Rats_runtime.Retry
module Progress = Rats_runtime.Progress

type measurement = { makespan : float; work : float }

type result = {
  config : Suite.config;
  cluster : string;
  hcpa : measurement;
  delta : measurement;
  timecost : measurement;
}

type failure = {
  config : Suite.config;
  cluster : string;
  error : Retry.failure;
}

type sweep = { results : result list; failed : failure list; total : int }

let strategy_measurement ?alloc problem strategy =
  let outcome = Core.Algorithms.run ?alloc problem strategy in
  {
    makespan = Core.Algorithms.makespan outcome;
    work = Core.Algorithms.work outcome;
  }

(* --- result cache ------------------------------------------------------- *)

let cache_key ~cluster ~delta ~timecost config =
  Cache.key
    [
      "runner.run_config";
      Cluster.signature cluster;
      Suite.name config;
      Printf.sprintf "%h/%h" delta.Core.Rats.mindelta delta.Core.Rats.maxdelta;
      Printf.sprintf "%h/%b" timecost.Core.Rats.minrho
        timecost.Core.Rats.packing;
    ]

(* "%h" floats round-trip bit-exactly through [float_of_string], so cached
   replays are indistinguishable from fresh computation. *)
let encode_result r =
  Printf.sprintf "%h %h %h %h %h %h" r.hcpa.makespan r.hcpa.work
    r.delta.makespan r.delta.work r.timecost.makespan r.timecost.work

let decode_result ~config ~cluster payload =
  match String.split_on_char ' ' payload with
  | [ a; b; c; d; e; f ] -> (
      let fl = float_of_string in
      try
        Some
          {
            config;
            cluster;
            hcpa = { makespan = fl a; work = fl b };
            delta = { makespan = fl c; work = fl d };
            timecost = { makespan = fl e; work = fl f };
          }
      with Failure _ -> None)
  | _ -> None

(* --- execution ---------------------------------------------------------- *)

let compute_config ~delta ~timecost cluster config =
  (* Same pipeline as the online service (Server.Api): DAG generation,
     problem construction, HCPA allocation — bit-identical to the historic
     inline sequence. *)
  let problem, alloc =
    Rats_server.Api.prepare ~cluster (Rats_server.Api.Generated config)
  in
  {
    config;
    cluster = cluster.Cluster.name;
    hcpa = strategy_measurement ~alloc problem Core.Rats.Baseline;
    delta = strategy_measurement ~alloc problem (Core.Rats.Delta delta);
    timecost = strategy_measurement ~alloc problem (Core.Rats.Timecost timecost);
  }

let task_name cluster config = cluster.Cluster.name ^ "/" ^ Suite.name config

(* One configuration through the full fault-tolerance stack: cache lookup,
   journal replay, fault points, retries and timeout. *)
let run_config_exec ~delta ~timecost ~exec cluster config =
  Exec.keyed exec
    ~name:(task_name cluster config)
    ~key:(cache_key ~cluster ~delta ~timecost config)
    ~encode:encode_result
    ~decode:(decode_result ~config ~cluster:cluster.Cluster.name)
    (fun () -> compute_config ~delta ~timecost cluster config)

let run_config_outcome ?(delta = Core.Rats.naive_delta)
    ?(timecost = Core.Rats.naive_timecost) ~exec cluster config =
  run_config_exec ~delta ~timecost ~exec cluster config

(* Returns whether the result came from the cache, for hit-rate reporting. *)
let run_config_cached ~delta ~timecost ~cache cluster config =
  match cache with
  | None -> (false, compute_config ~delta ~timecost cluster config)
  | Some cache -> (
      let key = cache_key ~cluster ~delta ~timecost config in
      let cached =
        Option.bind (Cache.find cache key)
          (decode_result ~config ~cluster:cluster.Cluster.name)
      in
      match cached with
      | Some r -> (true, r)
      | None ->
          let r = compute_config ~delta ~timecost cluster config in
          Cache.store cache key (encode_result r);
          (false, r))

let run_config ?(delta = Core.Rats.naive_delta)
    ?(timecost = Core.Rats.naive_timecost) ?cache cluster config =
  snd (run_config_cached ~delta ~timecost ~cache cluster config)

let run_sweep ?(delta = Core.Rats.naive_delta)
    ?(timecost = Core.Rats.naive_timecost) ?(progress = false)
    ?(exec = Exec.make ()) scale cluster =
  let configs = Suite.all scale in
  let reporter =
    Progress.create ~enabled:progress ~label:cluster.Cluster.name
      ~total:(List.length configs) ()
  in
  let outcomes =
    Exec.map_outcome exec
      ~run:(fun config ->
        let o = run_config_exec ~delta ~timecost ~exec cluster config in
        Progress.step
          ~cache_hit:(o.Exec.source = Exec.From_cache)
          ~resumed:(o.Exec.source = Exec.From_journal)
          ~failed:(Result.is_error o.Exec.value)
          ~retries:(o.Exec.attempts - 1) reporter;
        o)
      configs
  in
  Progress.finish reporter;
  let results, failed =
    List.fold_right2
      (fun config o (rs, fs) ->
        match o.Exec.value with
        | Ok r -> (r :: rs, fs)
        | Error error ->
            (rs, { config; cluster = cluster.Cluster.name; error } :: fs))
      configs outcomes ([], [])
  in
  { results; failed; total = List.length configs }

let run_suite ?delta ?timecost ?progress ?exec scale cluster =
  (run_sweep ?delta ?timecost ?progress ?exec scale cluster).results

let pp_failures ppf sweep =
  match sweep.failed with
  | [] -> ()
  | failed ->
      Format.fprintf ppf "%d/%d configurations failed:@." (List.length failed)
        sweep.total;
      List.iter
        (fun f ->
          Format.fprintf ppf "  %s/%s: %s@." f.cluster (Suite.name f.config)
            (Retry.failure_to_string f.error))
        failed
