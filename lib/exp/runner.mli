(** Experiment execution (paper §IV).

    For each application configuration the three algorithms share the same
    HCPA allocation (RATS reconsiders it during mapping); every schedule is
    replayed in the simulation engine and measured by simulated makespan and
    total work, the paper's two metrics.

    Suites execute through an {!Rats_runtime.Exec} context: deterministic
    pool ordering (parallel output is identical to serial), a
    content-addressed result cache, write-ahead journaling for
    crash-resumable sweeps, and fault-tolerant task execution (bounded
    retries, per-configuration timeout). Per-configuration results are
    keyed by (cluster signature, configuration name, algorithm parameters,
    code version) and round-trip bit-exactly, so re-running a suite after
    an unrelated change is near-instant.

    Failure contract: with a non-strict context a configuration that keeps
    failing after its retries occupies a slot in {!sweep.failed} instead of
    aborting the sweep; strict contexts fail fast with
    {!Rats_runtime.Exec.Task_failed}. *)

type measurement = { makespan : float; work : float }

type result = {
  config : Rats_daggen.Suite.config;
  cluster : string;
  hcpa : measurement;
  delta : measurement;
  timecost : measurement;
}

type failure = {
  config : Rats_daggen.Suite.config;
  cluster : string;
  error : Rats_runtime.Retry.failure;
}
(** One configuration that exhausted its retries, with the structured
    error (exception + backtrace + attempt count, or timeout). *)

type sweep = { results : result list; failed : failure list; total : int }
(** [results] is in suite order with failed configurations absent;
    [List.length results + List.length failed = total]. *)

val run_config :
  ?delta:Rats_core.Rats.delta_params ->
  ?timecost:Rats_core.Rats.timecost_params ->
  ?cache:Rats_runtime.Cache.t ->
  Rats_platform.Cluster.t ->
  Rats_daggen.Suite.config ->
  result
(** Parameters default to the paper's naive values (±0.5, ρ = 0.5 with
    packing). The plain primitive: no fault points, no retries — an error
    raises. *)

val run_config_outcome :
  ?delta:Rats_core.Rats.delta_params ->
  ?timecost:Rats_core.Rats.timecost_params ->
  exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t ->
  Rats_daggen.Suite.config ->
  result Rats_runtime.Exec.outcome
(** One configuration through the full fault-tolerance stack — cache
    lookup, journal replay, fault points, retries, timeout — returning the
    provenance-carrying outcome. The building block for custom sweeps
    (e.g. {!Figures.run_tuned_suite}). *)

val run_sweep :
  ?delta:Rats_core.Rats.delta_params ->
  ?timecost:Rats_core.Rats.timecost_params ->
  ?progress:bool ->
  ?exec:Rats_runtime.Exec.t ->
  Rats_daggen.Suite.scale ->
  Rats_platform.Cluster.t ->
  sweep
(** Runs every configuration of the suite on the cluster through [exec]
    (default {!Rats_runtime.Exec.make}: no cache, no faults, no retries).
    The result list is in suite order and identical for every worker
    count. [progress] (default false) reports throughput, ETA, cache-hit
    rate and failure counters on stderr. *)

val run_suite :
  ?delta:Rats_core.Rats.delta_params ->
  ?timecost:Rats_core.Rats.timecost_params ->
  ?progress:bool ->
  ?exec:Rats_runtime.Exec.t ->
  Rats_daggen.Suite.scale ->
  Rats_platform.Cluster.t ->
  result list
(** [run_sweep] keeping only the successful results — the historical
    entry point; callers that must account for failures use
    {!run_sweep}. *)

val pp_failures : Format.formatter -> sweep -> unit
(** Prints one line per failed configuration (name + structured error);
    prints nothing when the sweep fully succeeded. *)

val strategy_measurement :
  ?alloc:int array ->
  Rats_core.Problem.t ->
  Rats_core.Rats.strategy ->
  measurement
(** One algorithm on one prepared problem — the primitive {!Tuning} sweeps
    use to avoid re-running the baseline for every parameter value. *)
