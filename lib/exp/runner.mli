(** Experiment execution (paper §IV).

    For each application configuration the three algorithms share the same
    HCPA allocation (RATS reconsiders it during mapping); every schedule is
    replayed in the simulation engine and measured by simulated makespan and
    total work, the paper's two metrics.

    Suites execute through {!Rats_runtime.Pool} (deterministic ordering —
    parallel output is identical to serial) and, when a cache is supplied,
    through {!Rats_runtime.Cache}: per-configuration results are keyed by
    (cluster signature, configuration name, algorithm parameters, code
    version) and round-trip bit-exactly, so re-running a suite after an
    unrelated change is near-instant. *)

type measurement = { makespan : float; work : float }

type result = {
  config : Rats_daggen.Suite.config;
  cluster : string;
  hcpa : measurement;
  delta : measurement;
  timecost : measurement;
}

val run_config :
  ?delta:Rats_core.Rats.delta_params ->
  ?timecost:Rats_core.Rats.timecost_params ->
  ?cache:Rats_runtime.Cache.t ->
  Rats_platform.Cluster.t ->
  Rats_daggen.Suite.config ->
  result
(** Parameters default to the paper's naive values (±0.5, ρ = 0.5 with
    packing). *)

val run_suite :
  ?delta:Rats_core.Rats.delta_params ->
  ?timecost:Rats_core.Rats.timecost_params ->
  ?progress:bool ->
  ?jobs:int ->
  ?cache:Rats_runtime.Cache.t ->
  Rats_daggen.Suite.scale ->
  Rats_platform.Cluster.t ->
  result list
(** Runs every configuration of the suite on the cluster, on
    [jobs] pool workers (default {!Rats_runtime.Pool.default_jobs}; [1]
    falls back to plain serial execution). The result list is in suite
    order and identical for every [jobs] value. [progress] (default false)
    reports throughput, ETA and cache-hit rate on stderr. *)

val strategy_measurement :
  ?alloc:int array ->
  Rats_core.Problem.t ->
  Rats_core.Rats.strategy ->
  measurement
(** One algorithm on one prepared problem — the primitive {!Tuning} sweeps
    use to avoid re-running the baseline for every parameter value. *)
