(** Parameter sweeps of §IV-C: Figures 4 and 5, Table IV.

    For each application configuration the DAG, the HCPA allocation and the
    HCPA baseline makespan are computed once; every grid point then only
    pays its own RATS mapping + simulation. Averages are arithmetic means of
    the per-configuration relative makespans, as in the paper.

    All entry points take an optional {!Rats_runtime.Exec} context
    (default: plain serial execution, no cache, no faults). Under fault
    injection a failed configuration or grid point is dropped from the
    averages — counted in [exec.stats], reported by the CLIs — and a sweep
    that lost any unit is never stored as a whole-sweep cache entry, so
    degraded data cannot be replayed as complete on a later warm run. *)

val mindelta_values : float list
(** {0, −0.25, −0.5, −0.75} — 0 disables packing. *)

val maxdelta_values : float list
(** {0, 0.25, 0.5, 0.75, 1} — 0 disables stretching. *)

val minrho_values : float list
(** {0.2, 0.4, 0.5, 0.6, 0.8, 1}. *)

type prepared
(** A configuration ready for sweeping (problem + allocation + baseline). *)

val prepare :
  ?exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t -> Rats_daggen.Suite.config list -> prepared list
(** DAG generation + HCPA allocation + baseline simulation per
    configuration, on the context's worker pool. *)

val average_relative : prepared list -> Rats_core.Rats.strategy -> float
(** Mean over the prepared configurations of (strategy makespan / HCPA
    makespan). *)

val configs_of_kind :
  Rats_daggen.Suite.scale -> Rats_daggen.Suite.app_kind ->
  Rats_daggen.Suite.config list

val tuning_configs :
  Rats_daggen.Suite.scale -> Rats_daggen.Suite.app_kind ->
  Rats_daggen.Suite.config list
(** Subsample used by {!table4}: first-sample configurations only, evenly
    thinned to at most 24 per kind — the sweeps visit every grid point for
    every configuration, so this bounds the tuning cost while covering all
    shapes. *)

type delta_point = {
  mindelta : float;
  maxdelta : float;
  avg_relative_makespan : float;
}

val sweep_delta :
  ?exec:Rats_runtime.Exec.t -> prepared list -> delta_point list
(** The full mindelta × maxdelta grid (Figure 4), parallel over grid
    points. *)

type timecost_point = {
  packing : bool;
  minrho : float;
  avg_relative_makespan : float;
}

val sweep_timecost :
  ?exec:Rats_runtime.Exec.t -> prepared list -> timecost_point list
(** Both packing settings × every minrho (Figure 5), parallel over grid
    points. *)

val sweep_delta_for :
  ?exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t -> Rats_daggen.Suite.config list -> delta_point list
(** [prepare] + {!sweep_delta}, with the whole point list as one cache
    entry — a warm Figure 4 regeneration skips every replay. *)

val sweep_timecost_for :
  ?exec:Rats_runtime.Exec.t ->
  Rats_platform.Cluster.t -> Rats_daggen.Suite.config list ->
  timecost_point list
(** [prepare] + {!sweep_timecost} as one cache entry (Figure 5). *)

type tuned = { delta : Rats_core.Rats.delta_params; minrho : float }

val best : delta_point list -> timecost_point list -> tuned
(** Arg-min of each sweep; time-cost packing is always enabled in the tuned
    setting (the paper observes packing always helps). *)

val table4 :
  ?exec:Rats_runtime.Exec.t ->
  Rats_daggen.Suite.scale ->
  (string * (Rats_daggen.Suite.app_kind * tuned) list) list
(** For every cluster, the tuned parameters per application kind — the
    reproduction of Table IV. With a cache, each (cluster, kind) cell is one
    entry keyed by cluster signature, configuration set and sweep grids; a
    hit skips that cell's prepare + sweep pipeline entirely. *)

val tuned_for :
  (string * (Rats_daggen.Suite.app_kind * tuned) list) list ->
  cluster:string ->
  kind:Rats_daggen.Suite.app_kind ->
  tuned
(** Lookup helper; raises [Not_found] on unknown keys. *)
