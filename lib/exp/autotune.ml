module Core = Rats_core
module Dag = Rats_dag.Dag

type features = {
  avg_parallelism : float;
  ccr : float;
  procs_per_parallelism : float;
}

let features problem =
  let avg_parallelism = Core.Hcpa.average_parallelism problem in
  let dag = Core.Problem.dag problem in
  let comp = ref 0. and comm = ref 0. in
  for i = 0 to Core.Problem.n_tasks problem - 1 do
    comp := !comp +. Core.Problem.task_time problem i ~procs:1
  done;
  List.iter
    (fun e ->
      comm := !comm +. Core.Problem.edge_cost_estimate problem e.Dag.bytes)
    (Dag.edges dag);
  {
    avg_parallelism;
    ccr = (if !comp > 0. then !comm /. !comp else 0.);
    procs_per_parallelism =
      float_of_int (Core.Problem.n_procs problem) /. avg_parallelism;
  }

let estimated_makespan ~alloc problem strategy =
  Core.Schedule.makespan_estimated (Core.Rats.schedule ~alloc problem strategy)

let argmin_by f = function
  | [] -> invalid_arg "Autotune: empty candidate list"
  | x :: rest ->
      let best = ref x and best_v = ref (f x) in
      List.iter
        (fun y ->
          let v = f y in
          if v < !best_v then begin
            best := y;
            best_v := v
          end)
        rest;
      !best

let probe_delta problem =
  let alloc = Core.Hcpa.allocate problem in
  let candidates =
    List.concat_map
      (fun mindelta ->
        List.map
          (fun maxdelta -> { Core.Rats.mindelta; maxdelta })
          Tuning.maxdelta_values)
      Tuning.mindelta_values
  in
  argmin_by
    (fun p -> estimated_makespan ~alloc problem (Core.Rats.Delta p))
    candidates

let probe_timecost problem =
  let alloc = Core.Hcpa.allocate problem in
  let candidates =
    List.concat_map
      (fun packing ->
        List.map (fun minrho -> { Core.Rats.minrho; packing }) Tuning.minrho_values)
      [ false; true ]
  in
  argmin_by
    (fun p -> estimated_makespan ~alloc problem (Core.Rats.Timecost p))
    candidates

let probe problem =
  let alloc = Core.Hcpa.allocate problem in
  let d = Core.Rats.Delta (probe_delta problem) in
  let t = Core.Rats.Timecost (probe_timecost problem) in
  if estimated_makespan ~alloc problem d < estimated_makespan ~alloc problem t
  then d
  else t

let clamp lo hi v = Float.max lo (Float.min hi v)

let rules_delta f =
  {
    (* Figures 4: generous stretching always pays. Packing pays only when
       independent tasks compete for a crowded platform (few processors per
       unit of application parallelism). *)
    Core.Rats.maxdelta = 1.;
    mindelta = (if f.procs_per_parallelism < 3. then -0.25 else 0.);
  }

let rules_timecost f =
  {
    (* Figure 5: lower thresholds pay when communication dominates — a
       stretch that kills a redistribution is then worth a poor time-cost
       ratio. With cheap communication, stay conservative. *)
    Core.Rats.minrho = clamp 0.2 0.8 (0.8 -. (0.3 *. f.ccr));
    packing = true;
  }

(* The whole study is one cache entry: the rows depend only on the cluster,
   the configuration set and the probe grids (shared with Tuning). *)
let study_key cluster configs =
  Rats_runtime.Cache.key
    ([
       "autotune.selector_study";
       Rats_platform.Cluster.signature cluster;
       String.concat ","
         (List.map (fun v -> Printf.sprintf "%h" v) Tuning.mindelta_values);
       String.concat ","
         (List.map (fun v -> Printf.sprintf "%h" v) Tuning.maxdelta_values);
       String.concat ","
         (List.map (fun v -> Printf.sprintf "%h" v) Tuning.minrho_values);
     ]
    @ List.map Rats_daggen.Suite.name configs)

let encode_rows rows =
  String.concat "\n"
    (List.map (fun (label, v) -> Printf.sprintf "%s\t%h" label v) rows)

let decode_rows payload =
  let rows =
    List.map
      (fun line ->
        match String.index_opt line '\t' with
        | Some i -> (
            let label = String.sub line 0 i in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            try Some (label, float_of_string v) with Failure _ -> None)
        | None -> None)
      (String.split_on_char '\n' payload)
  in
  if rows <> [] && List.for_all Option.is_some rows then
    Some (List.filter_map Fun.id rows)
  else None

let compute_selector_study ~exec cluster configs =
  let selectors =
    [
      ("naive delta", fun _ -> Core.Rats.Delta Core.Rats.naive_delta);
      ("naive time-cost", fun _ -> Core.Rats.Timecost Core.Rats.naive_timecost);
      ("probe", probe);
      ("rules delta", fun p -> Core.Rats.Delta (rules_delta (features p)));
      ( "rules time-cost",
        fun p -> Core.Rats.Timecost (rules_timecost (features p)) );
    ]
  in
  let module Exec = Rats_runtime.Exec in
  (* A configuration whose baseline fails drops out of every selector's
     average (counted in [exec.stats]); the per-selector replays below are
     cheap and stay on the plain pool. *)
  let prepared =
    Exec.map exec
      ~name:(fun c ->
        "autotune.prepare/" ^ cluster.Rats_platform.Cluster.name ^ "/"
        ^ Rats_daggen.Suite.name c)
      ~f:(fun config ->
        let dag = Rats_daggen.Suite.generate config in
        let problem = Core.Problem.make ~dag ~cluster in
        let alloc = Core.Hcpa.allocate problem in
        let hcpa =
          Core.Algorithms.makespan (Core.Algorithms.run ~alloc problem Core.Rats.Baseline)
        in
        (problem, alloc, hcpa))
      configs
    |> Exec.oks
  in
  List.map
    (fun (name, select) ->
      let ratios =
        Rats_runtime.Pool.map ~jobs:exec.Exec.jobs
          (fun (problem, alloc, hcpa) ->
            let strategy = select problem in
            Core.Algorithms.makespan (Core.Algorithms.run ~alloc problem strategy)
            /. hcpa)
          prepared
        |> Array.of_list
      in
      (name, Rats_util.Stats.mean ratios))
    selectors

let selector_study ?(exec = Rats_runtime.Exec.make ()) cluster configs =
  match exec.Rats_runtime.Exec.cache with
  | None -> compute_selector_study ~exec cluster configs
  | Some c -> (
      let key = study_key cluster configs in
      match Option.bind (Rats_runtime.Cache.find c key) decode_rows with
      | Some rows -> rows
      | None ->
          let rows, clean =
            Rats_runtime.Exec.computed_cleanly exec (fun () ->
                compute_selector_study ~exec cluster configs)
          in
          if clean then Rats_runtime.Cache.store c key (encode_rows rows);
          rows)
