(** Text reproduction of every table and figure of the paper's evaluation.

    Each printer takes already-computed results so expensive runs can be
    shared between figures (e.g. Figures 2 and 3 reuse one suite run);
    [run_*] helpers produce those inputs. Curves are printed as percentile
    tables (a terminal-friendly rendering of the paper's sorted-series
    plots) together with the summary statistics the paper quotes in prose:
    average relative makespan and fraction of scenarios with improvement. *)

val table1 : Format.formatter -> unit
(** The 10-units / 4-senders / 5-receivers communication matrix. *)

val table2 : Format.formatter -> unit
(** Cluster characteristics. *)

val table3 : Format.formatter -> Rats_daggen.Suite.scale -> unit
(** DAG generation parameters and configuration counts. *)

val fig2 : Format.formatter -> Runner.result list -> unit
(** Relative makespan vs HCPA, naive parameters, sorted series. *)

val fig3 : Format.formatter -> Runner.result list -> unit
(** Relative work vs HCPA. *)

val fig4 : Format.formatter -> Tuning.delta_point list -> unit
(** Delta-strategy (mindelta × maxdelta) surface. *)

val fig5 : Format.formatter -> Tuning.timecost_point list -> unit
(** Time-cost minrho curves, packing on/off. *)

val table4 :
  Format.formatter ->
  (string * (Rats_daggen.Suite.app_kind * Tuning.tuned) list) list ->
  unit

val fig6 : Format.formatter -> Runner.result list -> unit
(** Tuned relative makespan. *)

val fig7 : Format.formatter -> Runner.result list -> unit
(** Tuned relative work. *)

val table5 : Format.formatter -> (string * Runner.result list) list -> unit
(** Pairwise comparison, cells "chti / grillon / grelon". *)

val table6 : Format.formatter -> (string * Runner.result list) list -> unit
(** Average degradation from best per cluster. *)

val run_tuned_suite :
  ?exec:Rats_runtime.Exec.t ->
  Rats_daggen.Suite.scale ->
  (string * (Rats_daggen.Suite.app_kind * Tuning.tuned) list) list ->
  Rats_platform.Cluster.t ->
  Runner.result list
(** Suite run where every configuration uses its application kind's tuned
    parameters on that cluster (§IV-D). Executes through the context
    exactly like {!Runner.run_sweep} (cache, journal, fault points);
    configurations that exhaust their retries are dropped from the result
    list and counted in [exec.stats]. *)

val write_csv : string -> Runner.result list -> unit
(** Full per-configuration data (makespans and works of the three
    algorithms) for external plotting. *)
