(** Minimal HTML document builder.

    The studio's counterpart of {!Rats_viz.Svg}: just enough HTML to
    render reports — escaping, a handful of element helpers and a
    standalone-page wrapper with inline CSS. Everything returns plain
    strings; helpers escape the text they are given, and the [_raw]
    variants splice pre-rendered markup (an inline SVG, a highlighted
    cell) verbatim — the caller vouches for it.

    Self-containment is a design rule, not an accident: {!page} emits no
    [<script>], no [<link>], no external URL of any kind, so a report is
    one file that renders identically offline and archives losslessly. *)

val escape : string -> string
(** HTML-escapes ampersand, angle brackets and both quote characters, and
    strips other C0 control characters (except tab/newline, which become
    spaces) so hostile run labels cannot break out of an attribute or
    element. *)

val el : string -> ?cls:string -> string -> string
(** [el name ?cls body] is [<name class="cls">body</name>]; [body] is raw
    markup (escape text yourself or use {!text_el}). *)

val text_el : string -> ?cls:string -> string -> string
(** Like {!el}, with the body escaped. *)

val table :
  ?cls:string ->
  ?highlight:(int -> bool) ->
  header:string list ->
  string list list ->
  string
(** An escaped data table. [highlight i] marks column [i]'s cells (and
    header) with class ["hl"] — e.g. the fairness/p99 columns of a
    workload CSV. *)

val table_raw :
  ?cls:string -> header:string list -> string list list -> string
(** Like {!table}, but cells are raw markup (headers are still
    escaped). *)

val kv_table : (string * string) list -> string
(** Two-column key/value table, both sides escaped. *)

val details : summary:string -> string -> string
(** A collapsible [<details>] block (escaped summary, raw body). *)

val page : title:string -> ?refresh:float -> string -> string
(** [page ~title body] wraps raw [body] into a complete standalone HTML5
    document: escaped [<title>], the studio's inline stylesheet, no
    external references. [refresh] adds a [meta http-equiv refresh] tag
    with that period in seconds — the auto-refresh of the live monitor. *)
