(** A/B comparison of two bench runs.

    Takes two parsed {!Bench.t} documents — conventionally A = the
    committed baseline, B = the run being judged — and computes per-target
    wall-time deltas and embedded-counter deltas. A target or counter
    present on one side only is reported with the other side blank rather
    than dropped: a disappearing bench target is exactly the kind of
    regression a diff must surface.

    Comparability: wall times from runs of different [scale] (or with
    different cache behaviour) measure different work. {!warnings} renders
    those caveats; both front-ends print them before the numbers. *)

type side = { wall_s : float; cache_hits : int; cache_misses : int }

type target_delta = {
  label : string;
  a : side option;
  b : side option;
  pct : float option;
      (** Wall-time change in percent, [(b − a) / a · 100]; [None] unless
          both sides are present with [a.wall_s > 0]. *)
}

type counter_delta = {
  name : string;
  ca : int option;
  cb : int option;
  delta : int;  (** [cb − ca], absent sides counted as 0. *)
}

val targets : Bench.t -> Bench.t -> target_delta list
(** A's target order, then targets only B has, in B's order. *)

val counters : ?all:bool -> Bench.t -> Bench.t -> counter_delta list
(** Counter deltas from the embedded metrics snapshots (empty when
    neither side embeds one). Default: only counters whose value changed;
    [~all:true] keeps the unchanged ones too. Sorted by name. *)

val warnings : Bench.t -> Bench.t -> string list
(** Comparability caveats: differing [scale] (the committed snapshot may
    be a smoke-scale run — see docs/PERFORMANCE.md), differing schema
    versions, or one side reporting cache hits where the other ran cold. *)

val to_text : ?threshold:float -> Bench.t -> Bench.t -> string
(** Plain-text report: warnings, per-target wall-time table (Δs and Δ%,
    regressions beyond [threshold] percent marked, default 5.0), then
    changed counters. Ends with a newline. *)

val to_html : ?threshold:float -> Bench.t -> Bench.t -> string
(** The same content as a standalone HTML page (regressions and
    improvements color-coded). *)
