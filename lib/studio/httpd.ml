let response ?(status = (200, "OK")) ?(content_type = "text/html; charset=utf-8")
    body =
  let code, reason = status in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    code reason content_type (String.length body) body

(* Read the request head: bounded at 8 KiB, 5 s receive timeout, done at
   the first blank line. Returns the request path of a GET, [None] for
   anything else (including garbage and stalls). *)
let read_request fd =
  let max_head = 8192 in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5. with Unix.Unix_error _ -> ());
  let rec go () =
    if Buffer.length buf > max_head then None
    else
      let seen = Buffer.contents buf in
      let module S = String in
      let has_end =
        let rec find i =
          if i + 3 >= S.length seen then false
          else if S.sub seen i 4 = "\r\n\r\n" then true
          else find (i + 1)
        in
        S.length seen >= 4 && find 0
      in
      if has_end then Some seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            None
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> None
  in
  match go () with
  | None -> None
  | Some head -> (
      match String.split_on_char '\r' head with
      | request_line :: _ -> (
          match String.split_on_char ' ' request_line with
          | [ "GET"; path; _proto ] -> Some path
          | _ -> None)
      | [] -> None)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ()
  in
  go 0

let serve ?(host = "127.0.0.1") ?max_requests ?on_listen ~port handler =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt lfd Unix.SO_REUSEADDR true;
      Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen lfd 16;
      (match on_listen with
      | Some f ->
          let bound =
            match Unix.getsockname lfd with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> port
          in
          f bound
      | None -> ());
      let served = ref 0 in
      let continue () =
        match max_requests with None -> true | Some n -> !served < n
      in
      while continue () do
        match Unix.accept lfd with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | cfd, _ ->
            Fun.protect
              ~finally:(fun () ->
                try Unix.close cfd with Unix.Unix_error _ -> ())
              (fun () ->
                match read_request cfd with
                | None -> ()
                | Some path ->
                    let page = handler path in
                    write_all cfd (response page);
                    incr served)
      done)
