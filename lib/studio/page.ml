module Snapshot = Rats_obs.Snapshot
module Trace = Rats_obs.Trace
module Svg = Rats_viz.Svg
module Chart = Rats_viz.Chart
module Timeline = Rats_viz.Timeline

type input = {
  title : string;
  bench : Bench.t option;
  snapshot : Snapshot.t option;
  trace : Trace.event list option;
  workloads : (string * string) list;
  figures : (string * string) list;
}

let empty ~title =
  { title; bench = None; snapshot = None; trace = None; workloads = []; figures = [] }

let section title body = Html.text_el "h2" title :: body

let missing what = [ Html.el "p" ~cls:"muted" (Html.escape ("No " ^ what ^ ".")) ]

let figure caption svg =
  Html.el "div" ~cls:"figure" (Html.text_el "p" caption ^ "\n" ^ svg)

let num_cell s = Html.el "td" ~cls:"num" (Html.escape s)

let raw_table ?cls header rows =
  Html.table_raw ?cls ~header rows

(* --- run summary + per-target breakdown ---------------------------------- *)

let summary_of (b : Bench.t) =
  let sum f = List.fold_left (fun n tg -> n + f tg) 0 b.Bench.targets in
  let hits = sum (fun tg -> tg.Bench.cache_hits) in
  let misses = sum (fun tg -> tg.Bench.cache_misses) in
  Html.kv_table
    ([
       ("report", b.Bench.path);
       ("schema version", string_of_int b.Bench.version);
       ("scale", Option.value b.Bench.scale ~default:"(not recorded)");
     ]
    @ (match b.Bench.jobs with
      | Some j -> [ ("jobs", string_of_int j) ]
      | None -> [])
    @ (match b.Bench.total_wall_s with
      | Some w -> [ ("total wall", Printf.sprintf "%.3f s" w) ]
      | None -> [])
    @ [
        ( "cache",
          Printf.sprintf "%d hits / %d misses%s" hits misses
            (if hits + misses = 0 then ""
             else
               Printf.sprintf " (%.1f%% hit rate)"
                 (100. *. float_of_int hits /. float_of_int (hits + misses))) );
        ( "faults",
          Printf.sprintf "%d failed, %d retried, %d resumed"
            (sum (fun tg -> tg.Bench.failed))
            (sum (fun tg -> tg.Bench.retried))
            (sum (fun tg -> tg.Bench.resumed)) );
      ])

let targets_of (b : Bench.t) =
  match b.Bench.targets with
  | [] -> missing "targets in the bench report"
  | targets ->
      let rows =
        List.map
          (fun (tg : Bench.target) ->
            [
              Html.text_el "td" tg.Bench.label;
              num_cell (Printf.sprintf "%.3f" tg.Bench.wall_s);
              num_cell (string_of_int tg.Bench.jobs);
              num_cell (string_of_int tg.Bench.cache_hits);
              num_cell (string_of_int tg.Bench.cache_misses);
              num_cell (string_of_int tg.Bench.failed);
              num_cell (string_of_int tg.Bench.retried);
              num_cell (string_of_int tg.Bench.resumed);
            ])
          targets
      in
      let chart =
        Chart.bars ~title:"wall time per target (s)"
          ~value_label:(fun v -> Printf.sprintf "%.3f s" v)
          (List.map
             (fun (tg : Bench.target) -> (tg.Bench.label, tg.Bench.wall_s))
             targets)
      in
      [
        raw_table
          [ "target"; "wall_s"; "jobs"; "hits"; "misses"; "failed"; "retried"; "resumed" ]
          rows;
        figure "Per-target wall-time breakdown." (Svg.to_string chart);
      ]

(* --- metrics -------------------------------------------------------------- *)

let counters_of (s : Snapshot.t) =
  match s.Snapshot.counters with
  | [] -> missing "counters"
  | counters ->
      let rows =
        List.map
          (fun (name, v) ->
            [ Html.text_el "td" name; num_cell (string_of_int v) ])
          counters
      in
      [ Html.details ~summary:(Printf.sprintf "%d counters" (List.length counters))
          (raw_table [ "counter"; "value" ] rows) ]

let gauges_of (s : Snapshot.t) =
  match s.Snapshot.gauges with
  | [] -> []
  | gauges ->
      let rows =
        List.map
          (fun (name, v) ->
            [ Html.text_el "td" name; num_cell (Printf.sprintf "%g" v) ])
          gauges
      in
      [ Html.details ~summary:(Printf.sprintf "%d gauges" (List.length gauges))
          (raw_table [ "gauge"; "value" ] rows) ]

let histograms_of (s : Snapshot.t) =
  List.concat_map
    (fun (name, h) ->
      if h.Snapshot.count = 0 then []
      else
        [
          figure
            (Printf.sprintf "%s — %d observations, sum %.4g s" name
               h.Snapshot.count h.Snapshot.sum)
            (Svg.to_string (Chart.histogram ~title:name h.Snapshot.buckets));
        ])
    s.Snapshot.histograms

(* --- workload CSVs -------------------------------------------------------- *)

let parse_csv contents =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
  in
  match lines with
  | [] -> None
  | header :: rows ->
      Some
        ( String.split_on_char ',' header,
          List.map (String.split_on_char ',') rows )

let workload_of (name, contents) =
  match parse_csv contents with
  | None -> [ Html.el "p" ~cls:"muted" (Html.escape (name ^ ": empty CSV")) ]
  | Some (header, rows) ->
      let highlight i =
        match List.nth_opt header i with
        | Some h ->
            let h = String.lowercase_ascii h in
            (* The per-arm service-quality columns a study is read by. *)
            h = "jain_fairness" || h = "fairness"
            || String.length h >= 3
               && String.sub h (String.length h - 3) 3 = "p99"
        | None -> false
      in
      [
        Html.text_el "h3" name;
        Html.table ~highlight ~header rows;
      ]

(* --- assembly ------------------------------------------------------------- *)

let render input =
  let snapshot =
    match input.snapshot with
    | Some s -> Some s
    | None -> Option.bind input.bench (fun b -> b.Bench.metrics)
  in
  let bench_sections =
    match input.bench with
    | None -> section "Run" (missing "bench report (BENCH_runtime.json)")
    | Some b ->
        section "Run" [ summary_of b ]
        @ section "Targets" (targets_of b)
  in
  let figure_sections =
    match input.figures with
    | [] -> []
    | figs ->
        section "Figures" (List.map (fun (caption, svg) -> figure caption svg) figs)
  in
  let trace_sections =
    match input.trace with
    | None -> []
    | Some events ->
        section "Trace timeline"
          [
            figure
              (Printf.sprintf "%d trace events." (List.length events))
              (Svg.to_string (Timeline.render ~title:"" events));
          ]
  in
  let metric_sections =
    match snapshot with
    | None -> section "Metrics" (missing "metrics snapshot")
    | Some s ->
        section "Metrics" (counters_of s @ gauges_of s)
        @
        match histograms_of s with
        | [] -> []
        | h -> section "Latency histograms" h
  in
  let workload_sections =
    match input.workloads with
    | [] -> []
    | ws -> section "Workload studies" (List.concat_map workload_of ws)
  in
  let body =
    String.concat "\n"
      ((Html.text_el "h1" input.title :: bench_sections)
      @ figure_sections @ trace_sections @ metric_sections @ workload_sections)
  in
  Html.page ~title:input.title body

let write input path =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:dir "report" ".tmp"
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render input));
  Sys.rename tmp path
