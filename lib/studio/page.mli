(** Self-contained HTML report of one run.

    Collects whatever artifacts a run left behind — the
    [BENCH_runtime.json] perf report, a [--metrics] snapshot, a [--trace]
    Chrome trace, workload comparison CSVs, pre-rendered SVG figures — and
    renders them into one HTML document with every figure inlined (no
    external fetches; see {!Html.page}). Each input is optional: the
    report renders the sections it has artifacts for and notes the ones it
    does not, so a workload-only run and a full bench sweep use the same
    command. *)

type input = {
  title : string;
  bench : Bench.t option;
  snapshot : Rats_obs.Snapshot.t option;
      (** Explicit [--metrics] snapshot; when [None], the one embedded in
          [bench] (schema ≥ 2) is used. *)
  trace : Rats_obs.Trace.event list option;
      (** Parsed [--trace] events, rendered as an inline
          {!Rats_viz.Timeline}. *)
  workloads : (string * string) list;
      (** (name, CSV contents) — rendered as tables with the per-arm
          fairness and p99 columns highlighted. *)
  figures : (string * string) list;
      (** (caption, SVG markup) — e.g. Gantt charts from
          [rats_run --svg] — embedded verbatim. *)
}

val empty : title:string -> input

val render : input -> string
(** The complete HTML document. *)

val write : input -> string -> unit
(** Render to a file (atomic temp-file + rename in the target
    directory). *)
