module Snapshot = Rats_obs.Snapshot

type side = { wall_s : float; cache_hits : int; cache_misses : int }

type target_delta = {
  label : string;
  a : side option;
  b : side option;
  pct : float option;
}

type counter_delta = { name : string; ca : int option; cb : int option; delta : int }

let side_of (tg : Bench.target) =
  {
    wall_s = tg.Bench.wall_s;
    cache_hits = tg.Bench.cache_hits;
    cache_misses = tg.Bench.cache_misses;
  }

let delta_of label a b =
  let pct =
    match (a, b) with
    | Some a, Some b when a.wall_s > 0. ->
        Some ((b.wall_s -. a.wall_s) /. a.wall_s *. 100.)
    | _ -> None
  in
  { label; a; b; pct }

let targets ta tb =
  let of_a (tg : Bench.target) =
    let b = Option.map side_of (Bench.target tb tg.Bench.label) in
    delta_of tg.Bench.label (Some (side_of tg)) b
  in
  let only_b =
    List.filter_map
      (fun (tg : Bench.target) ->
        match Bench.target ta tg.Bench.label with
        | Some _ -> None
        | None -> Some (delta_of tg.Bench.label None (Some (side_of tg))))
      tb.Bench.targets
  in
  List.map of_a ta.Bench.targets @ only_b

let counters ?(all = false) ta tb =
  let of_side (t : Bench.t) =
    match t.Bench.metrics with Some s -> s.Snapshot.counters | None -> []
  in
  let ca = of_side ta and cb = of_side tb in
  let names =
    List.sort_uniq String.compare (List.map fst ca @ List.map fst cb)
  in
  List.filter_map
    (fun name ->
      let va = List.assoc_opt name ca and vb = List.assoc_opt name cb in
      let delta = Option.value vb ~default:0 - Option.value va ~default:0 in
      if all || delta <> 0 then Some { name; ca = va; cb = vb; delta }
      else None)
    names

let warnings ta tb =
  let scale =
    match (ta.Bench.scale, tb.Bench.scale) with
    | Some a, Some b when a <> b ->
        [
          Printf.sprintf
            "scale mismatch: %s is a %S run, %s a %S run — wall times \
             measure different work and are not comparable (the committed \
             snapshot's scale is noted in docs/PERFORMANCE.md)"
            ta.Bench.path a tb.Bench.path b;
        ]
    | _ -> []
  in
  let version =
    if ta.Bench.version <> tb.Bench.version then
      [
        Printf.sprintf
          "schema versions differ (%d vs %d): counter deltas are %s"
          ta.Bench.version tb.Bench.version
          (if ta.Bench.version < 2 || tb.Bench.version < 2 then
             "unavailable — version 1 reports embed no metrics snapshot"
           else "computed across versions");
      ]
    else []
  in
  let cache =
    let hits t =
      List.fold_left (fun n (tg : Bench.target) -> n + tg.Bench.cache_hits) 0
        t.Bench.targets
    in
    match (hits ta > 0, hits tb > 0) with
    | true, false | false, true ->
        [
          "one side ran with a warm result cache and the other cold — \
           wall-time deltas mostly measure the cache, not the code";
        ]
    | _ -> []
  in
  scale @ version @ cache

(* --- text rendering ------------------------------------------------------ *)

let fmt_wall = function
  | None -> "-"
  | Some s -> Printf.sprintf "%.3f" s.wall_s

let fmt_pct = function
  | None -> "-"
  | Some p -> Printf.sprintf "%+.1f%%" p

let marker threshold = function
  | Some p when p >= threshold -> "REGRESSION"
  | Some p when p <= -.threshold -> "improved"
  | _ -> ""

let to_text ?(threshold = 5.) ta tb =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "A: %s (scale %s, schema %d)" ta.Bench.path
    (Option.value ta.Bench.scale ~default:"?")
    ta.Bench.version;
  line "B: %s (scale %s, schema %d)" tb.Bench.path
    (Option.value tb.Bench.scale ~default:"?")
    tb.Bench.version;
  List.iter (fun w -> line "warning: %s" w) (warnings ta tb);
  line "";
  line "%-12s %12s %12s %12s %8s  %s" "target" "A wall_s" "B wall_s" "delta_s"
    "delta" "";
  List.iter
    (fun d ->
      let delta_s =
        match (d.a, d.b) with
        | Some a, Some b -> Printf.sprintf "%+.3f" (b.wall_s -. a.wall_s)
        | _ -> "-"
      in
      line "%-12s %12s %12s %12s %8s  %s" d.label (fmt_wall d.a) (fmt_wall d.b)
        delta_s (fmt_pct d.pct) (marker threshold d.pct))
    (targets ta tb);
  let cs = counters ta tb in
  if cs <> [] then begin
    line "";
    line "changed counters (B - A):";
    List.iter
      (fun c ->
        line "  %-55s %14s %14s %+14d" c.name
          (match c.ca with Some v -> string_of_int v | None -> "-")
          (match c.cb with Some v -> string_of_int v | None -> "-")
          c.delta)
      cs
  end;
  Buffer.contents buf

(* --- HTML rendering ------------------------------------------------------ *)

let to_html ?(threshold = 5.) ta tb =
  let num s = Html.el "td" ~cls:"num" (Html.escape s) in
  let target_rows =
    List.map
      (fun d ->
        let cls =
          match d.pct with
          | Some p when p >= threshold -> Some "regression"
          | Some p when p <= -.threshold -> Some "improvement"
          | _ -> None
        in
        let delta_s =
          match (d.a, d.b) with
          | Some a, Some b -> Printf.sprintf "%+.3f" (b.wall_s -. a.wall_s)
          | _ -> "-"
        in
        [
          Html.text_el "td" d.label;
          num (fmt_wall d.a);
          num (fmt_wall d.b);
          num delta_s;
          Html.el "td" ?cls (Html.escape (fmt_pct d.pct));
        ])
      (targets ta tb)
  in
  let counter_rows =
    List.map
      (fun c ->
        [
          Html.text_el "td" c.name;
          num (match c.ca with Some v -> string_of_int v | None -> "-");
          num (match c.cb with Some v -> string_of_int v | None -> "-");
          num (Printf.sprintf "%+d" c.delta);
        ])
      (counters ta tb)
  in
  let raw_table header rows =
    Html.el "table" ~cls:"data"
      (Html.el "thead"
         (Html.el "tr"
            (String.concat "" (List.map (Html.text_el "th") header)))
      ^ Html.el "tbody"
          (String.concat "\n"
             (List.map (fun r -> Html.el "tr" (String.concat "" r)) rows)))
  in
  let body =
    String.concat "\n"
      ([
         Html.text_el "h1" "Bench A/B diff";
         Html.kv_table
           [
             ("A", Printf.sprintf "%s (scale %s, schema %d)" ta.Bench.path
                 (Option.value ta.Bench.scale ~default:"?") ta.Bench.version);
             ("B", Printf.sprintf "%s (scale %s, schema %d)" tb.Bench.path
                 (Option.value tb.Bench.scale ~default:"?") tb.Bench.version);
           ];
       ]
      @ List.map
          (fun w -> Html.el "div" ~cls:"warn" (Html.escape w))
          (warnings ta tb)
      @ [
          Html.text_el "h2" "Per-target wall time";
          raw_table [ "target"; "A wall_s"; "B wall_s"; "delta_s"; "delta %" ]
            target_rows;
        ]
      @
      if counter_rows = [] then
        [ Html.el "p" ~cls:"muted" "No embedded counter deltas." ]
      else
        [
          Html.text_el "h2" "Changed counters (B − A)";
          raw_table [ "counter"; "A"; "B"; "delta" ] counter_rows;
        ])
  in
  Html.page ~title:"Bench A/B diff" body
