(** Typed view of a [BENCH_runtime.json] document.

    {!Rats_runtime.Report} writes the document and hands back raw JSON on
    {!Rats_runtime.Report.load}; this module turns that JSON into a record
    the report and diff renderers can walk. Both schema versions load:
    version 1 (no [schema_version], no embedded metrics) yields
    [metrics = None] and [scale = None] where the field is absent, version
    2 carries the {!Rats_obs.Snapshot}. Malformed target entries are
    skipped, missing numeric fields default to 0 — a reader of historical
    snapshots must not be the thing that breaks. *)

type target = {
  label : string;
  wall_s : float;
  jobs : int;
  cache_hits : int;
  cache_misses : int;
  failed : int;
  retried : int;
  resumed : int;
}

type t = {
  path : string;  (** Where it was loaded from (diagnostics). *)
  version : int;  (** Schema version; 1 when the field is absent. *)
  scale : string option;  (** ["smoke"] / ["paper"]; [None] on v1 docs without it. *)
  jobs : int option;
  total_wall_s : float option;
  targets : target list;  (** Document order. *)
  metrics : Rats_obs.Snapshot.t option;  (** v2 embedded snapshot. *)
}

val of_json : path:string -> Rats_obs.Json.t -> t
(** Total — an empty or alien object yields an empty report, not an
    error. [path] is carried through for diagnostics only. *)

val load : string -> (t, string) result
(** Read and parse; errors are I/O or JSON-syntax only. *)

val target : t -> string -> target option
val counter : t -> string -> int option
(** Counter from the embedded metrics snapshot, when there is one. *)
