(** Minimal single-threaded HTTP responder.

    Just enough HTTP/1.1 to put a live page in a browser tab: bind a
    loopback TCP socket, accept one connection at a time, read the request
    head (bounded, with a receive timeout so a stalled client cannot wedge
    the monitor — the framing discipline of [bin/ratsd], in miniature),
    answer every [GET] with a freshly rendered page and [Connection:
    close]. No keep-alive, no routing, no TLS, no dependency — this is a
    progress monitor, not a web server, and it must never outlive its
    usefulness by becoming one. *)

val response : ?status:int * string -> ?content_type:string -> string -> string
(** [response body] is the full HTTP response byte string ([200 OK],
    [text/html; charset=utf-8] by default), with [Content-Length] and
    [Connection: close] headers. Exposed for tests. *)

val serve :
  ?host:string ->
  ?max_requests:int ->
  ?on_listen:(int -> unit) ->
  port:int ->
  (string -> string) ->
  unit
(** [serve ~port handler] binds [host] (default [127.0.0.1]) on [port]
    ([0] lets the kernel pick; [on_listen] receives the bound port either
    way) and serves [handler path] — a complete HTML document — to every
    request, sequentially, until [max_requests] have been answered
    (default: forever). Malformed or timed-out requests are dropped
    without counting. The listening socket is closed on return. *)
