(** Live view of a running sweep.

    Renders a snapshot-in-time HTML page from the artifacts a running
    sweep updates as it goes: the resumable {!Rats_runtime.Journal} (read
    with {!Rats_runtime.Journal.read_tail}, which never truncates and is
    safe against a concurrent appender), the [--metrics] snapshot file,
    and the [BENCH_runtime.json] report once it lands. Every render
    re-reads the files, so serving this page repeatedly — with the
    page's [meta refresh] pointed back at itself — is the whole monitor. *)

type source = {
  title : string;
  journal : string option;  (** path to a [Journal] file *)
  metrics : string option;  (** path to a metrics snapshot JSON *)
  bench : string option;  (** path to a [BENCH_runtime.json] *)
  refresh_s : int;  (** [meta refresh] interval baked into the page *)
  recent : int;  (** how many trailing journal records to list *)
}

val make :
  ?journal:string ->
  ?metrics:string ->
  ?bench:string ->
  ?refresh_s:int ->
  ?recent:int ->
  title:string ->
  unit ->
  source

val render : source -> string
(** Re-read every configured artifact and render the page. Missing or
    not-yet-created files render as muted placeholders, a torn journal
    tail as a warning banner — the monitor must outlive any state the
    sweep leaves the files in. *)
