let escape s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#x27;"
      | '\t' | '\n' -> Buffer.add_char buf ' '
      | c when Char.code c < 0x20 || Char.code c = 0x7f -> ()
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let el name ?cls body =
  match cls with
  | None -> Printf.sprintf "<%s>%s</%s>" name body name
  | Some cls ->
      Printf.sprintf "<%s class=\"%s\">%s</%s>" name (escape cls) body name

let text_el name ?cls body = el name ?cls (escape body)

let row_of cell cells = el "tr" (String.concat "" (List.map cell cells))

let table_with ~cls ~highlight ~header ~cell rows =
  let hcell i h =
    if highlight i then el "th" ~cls:"hl" (escape h) else text_el "th" h
  in
  let dcell i c = if highlight i then el "td" ~cls:"hl" (cell c) else el "td" (cell c) in
  let head = el "tr" (String.concat "" (List.mapi hcell header)) in
  let body =
    String.concat "\n"
      (List.map (fun r -> el "tr" (String.concat "" (List.mapi dcell r))) rows)
  in
  el "table" ?cls (el "thead" head ^ "\n" ^ el "tbody" body)

let table ?(cls = "data") ?(highlight = fun _ -> false) ~header rows =
  table_with ~cls:(Some cls) ~highlight ~header ~cell:escape rows

let table_raw ?(cls = "data") ~header rows =
  table_with ~cls:(Some cls) ~highlight:(fun _ -> false) ~header
    ~cell:(fun c -> c)
    rows

let kv_table kvs =
  el "table" ~cls:"kv"
    (el "tbody"
       (String.concat "\n"
          (List.map
             (fun (k, v) -> row_of (fun c -> text_el "td" c) [ k; v ])
             kvs)))

let details ~summary body =
  el "details" (text_el "summary" summary ^ "\n" ^ body)

(* One stylesheet for every studio page; inline so the document stays a
   single self-contained file. *)
let css =
  {|body { font-family: sans-serif; margin: 1.2em 2em; color: #222; max-width: 72em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #444; padding-bottom: .2em; }
h2 { font-size: 1.15em; margin-top: 1.6em; border-bottom: 1px solid #bbb; padding-bottom: .15em; }
table { border-collapse: collapse; margin: .6em 0; font-size: .85em; }
th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: left; }
th { background: #f0f0f0; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
table.kv td:first-child { background: #f7f7f7; font-weight: bold; }
.hl { background: #fff6d6; }
.regression { background: #ffd6d6; font-weight: bold; }
.improvement { background: #d9f2d9; }
.warn { background: #fff3cd; border: 1px solid #e0c36a; padding: .5em .8em; margin: .6em 0; }
.muted { color: #777; }
.figure { margin: .8em 0; overflow-x: auto; }
details > summary { cursor: pointer; color: #555; margin: .4em 0; }
|}

let page ~title ?refresh body =
  let refresh =
    match refresh with
    | None -> ""
    | Some s ->
        Printf.sprintf "<meta http-equiv=\"refresh\" content=\"%g\">\n" s
  in
  Printf.sprintf
    "<!DOCTYPE html>\n\
     <html lang=\"en\">\n\
     <head>\n\
     <meta charset=\"utf-8\">\n\
     %s<title>%s</title>\n\
     <style>\n\
     %s</style>\n\
     </head>\n\
     <body>\n\
     %s\n\
     </body>\n\
     </html>\n"
    refresh (escape title) css body
