module Json = Rats_obs.Json
module Snapshot = Rats_obs.Snapshot
module Report = Rats_runtime.Report

type target = {
  label : string;
  wall_s : float;
  jobs : int;
  cache_hits : int;
  cache_misses : int;
  failed : int;
  retried : int;
  resumed : int;
}

type t = {
  path : string;
  version : int;
  scale : string option;
  jobs : int option;
  total_wall_s : float option;
  targets : target list;
  metrics : Snapshot.t option;
}

let int_member name json ~default =
  match Option.bind (Json.member name json) Json.to_int with
  | Some n -> n
  | None -> default

let target_of_json json =
  match
    ( Option.bind (Json.member "label" json) Json.to_str,
      Option.bind (Json.member "wall_s" json) Json.to_float )
  with
  | Some label, Some wall_s ->
      Some
        {
          label;
          wall_s;
          jobs = int_member "jobs" json ~default:0;
          cache_hits = int_member "cache_hits" json ~default:0;
          cache_misses = int_member "cache_misses" json ~default:0;
          failed = int_member "failed" json ~default:0;
          retried = int_member "retried" json ~default:0;
          resumed = int_member "resumed" json ~default:0;
        }
  | _ -> None

let of_json ~path json =
  let targets =
    match Option.bind (Json.member "targets" json) Json.to_list with
    | Some l -> List.filter_map target_of_json l
    | None -> []
  in
  let metrics =
    match Json.member "metrics" json with
    | Some m -> ( match Snapshot.of_json m with Ok s -> Some s | Error _ -> None)
    | None -> None
  in
  {
    path;
    version = Report.version_of json;
    scale = Option.bind (Json.member "scale" json) Json.to_str;
    jobs = Option.bind (Json.member "jobs" json) Json.to_int;
    total_wall_s = Option.bind (Json.member "total_wall_s" json) Json.to_float;
    targets;
    metrics;
  }

let load path =
  match Report.load path with
  | Error msg -> Error (path ^ ": " ^ msg)
  | Ok json -> Ok (of_json ~path json)

let target t label = List.find_opt (fun tg -> tg.label = label) t.targets

let counter t name = Option.bind t.metrics (fun s -> Snapshot.counter s name)
