module Snapshot = Rats_obs.Snapshot
module Journal = Rats_runtime.Journal

type source = {
  title : string;
  journal : string option;
  metrics : string option;
  bench : string option;
  refresh_s : int;
  recent : int;
}

let make ?journal ?metrics ?bench ?(refresh_s = 2) ?(recent = 20) ~title () =
  { title; journal; metrics; bench; refresh_s; recent }

let missing what path =
  [
    Html.el "p" ~cls:"muted"
      (Html.escape (Printf.sprintf "No %s yet at %s." what path));
  ]

let last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let journal_of recent path =
  match Journal.read_tail path with
  | Error _ -> missing "journal" path
  | Ok tail ->
      let summary =
        Html.kv_table
          [
            ("records", string_of_int (List.length tail.Journal.records));
            ( "bytes",
              Printf.sprintf "%d (%d parseable)" tail.Journal.bytes
                tail.Journal.good_bytes );
          ]
      in
      let torn =
        if tail.Journal.torn then
          [
            Html.el "div" ~cls:"warn"
              (Html.escape
                 "journal tail is torn (in-flight append or interrupted \
                  writer) — trailing bytes ignored");
          ]
        else []
      in
      let rows =
        List.map
          (fun (key, payload) ->
            [
              Html.text_el "td" key;
              Html.el "td" ~cls:"num"
                (Html.escape (string_of_int (String.length payload)));
            ])
          (last recent tail.Journal.records)
      in
      let recent_table =
        if rows = [] then
          [ Html.el "p" ~cls:"muted" "Journal is empty so far." ]
        else
          [
            Html.text_el "h3"
              (Printf.sprintf "Last %d records" (List.length rows));
            Html.table_raw ~header:[ "key"; "payload bytes" ] rows;
          ]
      in
      (summary :: torn) @ recent_table

let metrics_of path =
  if not (Sys.file_exists path) then missing "metrics snapshot" path
  else
    match Snapshot.of_file path with
    | Error msg ->
        [
          Html.el "div" ~cls:"warn"
            (Html.escape
               (Printf.sprintf
                  "%s: %s (a concurrent writer may be mid-flush — next \
                   refresh will retry)"
                  path msg));
        ]
    | Ok s ->
        let rows =
          List.map
            (fun (name, v) ->
              [
                Html.text_el "td" name;
                Html.el "td" ~cls:"num" (Html.escape (string_of_int v));
              ])
            s.Snapshot.counters
        in
        if rows = [] then [ Html.el "p" ~cls:"muted" "No counters yet." ]
        else [ Html.table_raw ~header:[ "counter"; "value" ] rows ]

let bench_of path =
  if not (Sys.file_exists path) then missing "bench report" path
  else
    match Bench.load path with
    | Error msg ->
        [ Html.el "div" ~cls:"warn" (Html.escape (path ^ ": " ^ msg)) ]
    | Ok b ->
        let rows =
          List.map
            (fun (tg : Bench.target) ->
              [
                Html.text_el "td" tg.Bench.label;
                Html.el "td" ~cls:"num"
                  (Html.escape (Printf.sprintf "%.3f" tg.Bench.wall_s));
              ])
            b.Bench.targets
        in
        Html.kv_table
          [
            ("scale", Option.value b.Bench.scale ~default:"(not recorded)");
            ( "total wall",
              match b.Bench.total_wall_s with
              | Some w -> Printf.sprintf "%.3f s" w
              | None -> "-" );
          ]
        :: (if rows = [] then []
            else [ Html.table_raw ~header:[ "target"; "wall_s" ] rows ])

let render src =
  let section title body = Html.text_el "h2" title :: body in
  let opt title f = function
    | None -> []
    | Some path -> section title (f path)
  in
  let body =
    String.concat "\n"
      ((Html.text_el "h1" src.title
       :: Html.el "p" ~cls:"muted"
            (Html.escape
               (Printf.sprintf "Auto-refreshes every %d s." src.refresh_s))
       :: opt "Journal" (journal_of src.recent) src.journal)
      @ opt "Metrics" metrics_of src.metrics
      @ opt "Bench report" bench_of src.bench)
  in
  Html.page ~title:src.title ~refresh:(float_of_int src.refresh_s) body
